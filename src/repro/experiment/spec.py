"""Serializable experiment specs: a paper figure as one JSON document.

The paper's evaluation is a set of *named, repeatable experiments* —
Figure 1's loss×RTT grid, the §2 soft-failure timeline, the design
audits of Figures 3–8.  An :class:`ExperimentSpec` is the pure-data
description of one such run: what design, what mesh cadence, what
fault/repair timeline (or what sweep grid, or which bench scenarios),
what seed, what horizon.  Nothing executable lives here — a spec is a
value, and the whole layer is built around one invariant::

    ExperimentSpec.from_json(spec.to_json()) == spec        # lossless

Three kinds cover the repo's three historic run shapes:

* ``scenario`` (:class:`ScenarioSpec`) — a :class:`repro.scenario.Scenario`
  timeline: design, mesh, faults, repairs, link cuts, alert thresholds;
* ``sweep`` (:class:`SweepSpec`) — an :func:`repro.analysis.sweep.sweep`
  grid over a *registered* target function (see
  :mod:`repro.experiment.registry`);
* ``bench`` (:class:`BenchSpec`) — a :mod:`repro.bench` timing suite.

Specs serialize through the same :func:`repro.exec.seeding.canonical_json`
the result cache keys use, so ``spec.digest()`` is stable across
processes, platforms and ``PYTHONHASHSEED`` — two people holding the
same JSON file hold the same experiment, byte for byte.  Sweep grids
serialize as a *list of pairs* (not an object) because parameter order
defines the grid's column and iteration order and must survive the
canonical encoder's key sorting.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field, fields
from typing import ClassVar, Dict, List, Mapping, Optional, Sequence, Tuple, Type

from ..errors import ConfigurationError
from ..exec.seeding import canonical_json

__all__ = [
    "SPEC_SCHEMA_VERSION",
    "AlertRuleSpec",
    "BenchSpec",
    "ExperimentSpec",
    "FaultSpec",
    "LinkCutSpec",
    "MeshSpec",
    "ScenarioSpec",
    "SweepSpec",
    "load_spec",
    "lazy_spec_kinds",
    "register_spec_kind",
    "registered_spec_kinds",
    "spec_kinds",
]

#: Bumped when the spec layout changes incompatibly.
SPEC_SCHEMA_VERSION = 1


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


def _tuple_of(values: Optional[Sequence]) -> Tuple:
    return tuple(values) if values is not None else ()


# -- scenario sub-specs -------------------------------------------------------

@dataclass(frozen=True)
class MeshSpec:
    """The perfSONAR mesh of a scenario: who probes whom, how often.

    ``hosts`` may be empty, meaning "derive from the design" (its
    perfSONAR hosts plus the remote DTN, the same rule ``repro trace``
    uses).  Cadences are plain seconds so the spec stays unit-free.
    """

    hosts: Tuple[str, ...] = ()
    owamp_interval_s: float = 60.0
    bwctl_interval_s: float = 600.0
    bwctl_duration_s: float = 10.0
    owamp_packets: int = 20_000
    algorithm: str = "htcp"

    def __post_init__(self) -> None:
        _require(self.owamp_interval_s > 0 and self.bwctl_interval_s > 0,
                 "mesh intervals must be positive")
        _require(self.owamp_packets >= 1, "owamp_packets must be >= 1")

    def to_dict(self) -> Dict[str, object]:
        return {
            "hosts": list(self.hosts),
            "owamp_interval_s": self.owamp_interval_s,
            "bwctl_interval_s": self.bwctl_interval_s,
            "bwctl_duration_s": self.bwctl_duration_s,
            "owamp_packets": self.owamp_packets,
            "algorithm": self.algorithm,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "MeshSpec":
        return cls(
            hosts=_tuple_of(data.get("hosts")),
            owamp_interval_s=float(data.get("owamp_interval_s", 60.0)),
            bwctl_interval_s=float(data.get("bwctl_interval_s", 600.0)),
            bwctl_duration_s=float(data.get("bwctl_duration_s", 10.0)),
            owamp_packets=int(data.get("owamp_packets", 20_000)),
            algorithm=str(data.get("algorithm", "htcp")),
        )


@dataclass(frozen=True)
class FaultSpec:
    """One soft failure on the timeline.

    ``kind`` names an entry in :data:`repro.experiment.registry.FAULTS`
    (``linecard``, ``optics``, ``cpu``, ``duplex``); ``params`` are the
    registry builder's keyword arguments, JSON scalars only.  ``node``
    of None means "the design's border router" — the §2 incident site.
    """

    kind: str
    at_s: float
    node: Optional[str] = None
    params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        _require(bool(self.kind), "fault kind must be non-empty")
        _require(self.at_s >= 0, "fault at_s must be >= 0")

    def param_mapping(self) -> Dict[str, object]:
        return dict(self.params)

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "at_s": self.at_s,
            "node": self.node,
            "params": {k: v for k, v in self.params},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FaultSpec":
        params = data.get("params") or {}
        return cls(
            kind=str(data["kind"]),
            at_s=float(data["at_s"]),
            node=data.get("node"),
            params=tuple(sorted(params.items())),
        )


@dataclass(frozen=True)
class LinkCutSpec:
    """A §3.3 *hard* failure: the a—b link goes down at ``at_s``."""

    a: str
    b: str
    at_s: float

    def to_dict(self) -> Dict[str, object]:
        return {"a": self.a, "b": self.b, "at_s": self.at_s}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "LinkCutSpec":
        return cls(a=str(data["a"]), b=str(data["b"]),
                   at_s=float(data["at_s"]))


@dataclass(frozen=True)
class AlertRuleSpec:
    """Thresholds for the outcome's :class:`~repro.perfsonar.alerts.AlertRule`."""

    loss_rate_threshold: float = 1e-5
    throughput_drop_fraction: float = 0.5
    latency_rise_fraction: float = 0.5
    baseline_samples: int = 3

    def to_dict(self) -> Dict[str, object]:
        return {
            "loss_rate_threshold": self.loss_rate_threshold,
            "throughput_drop_fraction": self.throughput_drop_fraction,
            "latency_rise_fraction": self.latency_rise_fraction,
            "baseline_samples": self.baseline_samples,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "AlertRuleSpec":
        return cls(
            loss_rate_threshold=float(data.get("loss_rate_threshold", 1e-5)),
            throughput_drop_fraction=float(
                data.get("throughput_drop_fraction", 0.5)),
            latency_rise_fraction=float(
                data.get("latency_rise_fraction", 0.5)),
            baseline_samples=int(data.get("baseline_samples", 3)),
        )


# -- the spec kinds -----------------------------------------------------------

@dataclass(frozen=True)
class ExperimentSpec:
    """Base of all spec kinds: identity, seed, provenance helpers.

    Subclasses set ``kind`` (a class attribute, serialized into the
    JSON) and implement ``_payload_dict``/``_from_payload``.
    """

    kind: ClassVar[str] = ""

    name: str
    seed: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        _require(bool(self.name), "spec name must be non-empty")

    # -- serialization --------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """The full JSON-ready representation (schema + kind included)."""
        out: Dict[str, object] = {
            "schema": SPEC_SCHEMA_VERSION,
            "kind": self.kind,
            "name": self.name,
            "seed": self.seed,
            "description": self.description,
        }
        out.update(self._payload_dict())
        return out

    def to_json(self) -> str:
        """Canonical (sorted-key, whitespace-free) JSON for this spec."""
        return canonical_json(self.to_dict())

    def digest(self) -> str:
        """sha256 of :meth:`to_json` — the spec's identity everywhere."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    def save(self, path: os.PathLike | str) -> str:
        """Write the spec as human-diffable JSON; returns the path."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return os.fspath(path)

    # -- parsing --------------------------------------------------------------
    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "ExperimentSpec":
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"a spec must be a JSON object, got {type(data).__name__}")
        schema = data.get("schema")
        if schema != SPEC_SCHEMA_VERSION:
            raise ConfigurationError(
                f"spec has schema {schema!r}; this library speaks "
                f"schema {SPEC_SCHEMA_VERSION}")
        kind = data.get("kind")
        cls = _resolve_kind(kind)
        if cls is None:
            known = ", ".join(sorted(set(_SPEC_KINDS) | set(_LAZY_KINDS)))
            raise ConfigurationError(
                f"unknown spec kind {kind!r}; known kinds: {known}")
        return cls._from_payload(data)

    @staticmethod
    def from_json(text: str) -> "ExperimentSpec":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ConfigurationError(f"spec is not valid JSON: {exc}")
        return ExperimentSpec.from_dict(data)

    @staticmethod
    def from_file(path: os.PathLike | str) -> "ExperimentSpec":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise ConfigurationError(f"cannot read spec {path!r}: {exc}")
        return ExperimentSpec.from_json(text)

    # -- subclass hooks -------------------------------------------------------
    def _payload_dict(self) -> Dict[str, object]:
        raise NotImplementedError

    @classmethod
    def _from_payload(cls, data: Mapping[str, object]) -> "ExperimentSpec":
        raise NotImplementedError


@dataclass(frozen=True)
class ScenarioSpec(ExperimentSpec):
    """A declarative monitoring scenario (the §2 timeline as data)."""

    kind: ClassVar[str] = "scenario"

    design: str = "simple-science-dmz"
    until_s: float = 5400.0
    mesh: MeshSpec = field(default_factory=MeshSpec)
    faults: Tuple[FaultSpec, ...] = ()
    repairs_s: Tuple[float, ...] = ()
    link_cuts: Tuple[LinkCutSpec, ...] = ()
    alert_rule: AlertRuleSpec = field(default_factory=AlertRuleSpec)

    def __post_init__(self) -> None:
        super().__post_init__()
        _require(self.until_s > 0, "scenario horizon until_s must be > 0")
        for fault in self.faults:
            _require(fault.at_s < self.until_s,
                     f"fault at t={fault.at_s}s is not before the "
                     f"horizon {self.until_s}s")

    def _payload_dict(self) -> Dict[str, object]:
        return {
            "design": self.design,
            "until_s": self.until_s,
            "mesh": self.mesh.to_dict(),
            "faults": [f.to_dict() for f in self.faults],
            "repairs_s": list(self.repairs_s),
            "link_cuts": [c.to_dict() for c in self.link_cuts],
            "alert_rule": self.alert_rule.to_dict(),
        }

    @classmethod
    def _from_payload(cls, data: Mapping[str, object]) -> "ScenarioSpec":
        return cls(
            name=str(data["name"]),
            seed=int(data.get("seed", 0)),
            description=str(data.get("description", "")),
            design=str(data.get("design", "simple-science-dmz")),
            until_s=float(data.get("until_s", 5400.0)),
            mesh=MeshSpec.from_dict(data.get("mesh") or {}),
            faults=tuple(FaultSpec.from_dict(f)
                         for f in data.get("faults") or ()),
            repairs_s=tuple(float(r) for r in data.get("repairs_s") or ()),
            link_cuts=tuple(LinkCutSpec.from_dict(c)
                            for c in data.get("link_cuts") or ()),
            alert_rule=AlertRuleSpec.from_dict(data.get("alert_rule") or {}),
        )


@dataclass(frozen=True)
class SweepSpec(ExperimentSpec):
    """A parameter grid over a registered target function.

    ``grid`` is an *ordered* sequence of ``(param_name, values)`` pairs —
    order defines column and iteration order, exactly as
    :func:`repro.analysis.sweep.sweep` treats its mapping argument.  Use
    :meth:`from_grid` to build one from a plain dict.  When ``seeded``
    is true, every grid point receives a derived per-point seed (from
    this spec's ``seed`` via :func:`repro.exec.seeding.derive_seed`) as
    keyword ``seed``.
    """

    kind: ClassVar[str] = "sweep"

    target: str = ""
    grid: Tuple[Tuple[str, Tuple[object, ...]], ...] = ()
    value_label: str = "value"
    on_error: str = "raise"
    seeded: bool = False

    def __post_init__(self) -> None:
        super().__post_init__()
        _require(bool(self.target), "sweep spec needs a target name")
        _require(len(self.grid) > 0, "sweep spec needs at least one "
                                     "grid parameter")
        _require(self.on_error in ("raise", "record"),
                 f"on_error must be 'raise' or 'record', "
                 f"got {self.on_error!r}")
        seen = set()
        for param, values in self.grid:
            _require(param not in seen,
                     f"duplicate grid parameter {param!r}")
            seen.add(param)
            _require(len(values) > 0,
                     f"grid parameter {param!r} has no values")

    @classmethod
    def from_grid(cls, grid: Mapping[str, Sequence[object]],
                  **kwargs) -> "SweepSpec":
        """Build a spec from a plain ``{param: [values...]}`` mapping."""
        return cls(grid=tuple((str(k), tuple(v)) for k, v in grid.items()),
                   **kwargs)

    def grid_mapping(self) -> Dict[str, List[object]]:
        """The grid as the ordered mapping ``sweep()`` consumes."""
        return {param: list(values) for param, values in self.grid}

    def points(self) -> int:
        """Number of grid points (product of dimension sizes)."""
        total = 1
        for _, values in self.grid:
            total *= len(values)
        return total

    def _payload_dict(self) -> Dict[str, object]:
        return {
            "target": self.target,
            "grid": [[param, list(values)] for param, values in self.grid],
            "value_label": self.value_label,
            "on_error": self.on_error,
            "seeded": self.seeded,
        }

    @classmethod
    def _from_payload(cls, data: Mapping[str, object]) -> "SweepSpec":
        raw_grid = data.get("grid") or ()
        if isinstance(raw_grid, Mapping):
            # Accept object form for hand-written files, though the
            # canonical encoding is the order-preserving pair list.
            pairs = list(raw_grid.items())
        else:
            pairs = [(p, v) for p, v in raw_grid]
        return cls(
            name=str(data["name"]),
            seed=int(data.get("seed", 0)),
            description=str(data.get("description", "")),
            target=str(data.get("target", "")),
            grid=tuple((str(p), tuple(v)) for p, v in pairs),
            value_label=str(data.get("value_label", "value")),
            on_error=str(data.get("on_error", "raise")),
            seeded=bool(data.get("seeded", False)),
        )


@dataclass(frozen=True)
class BenchSpec(ExperimentSpec):
    """A :mod:`repro.bench` timing suite: which pinned scenarios, how.

    ``scenarios`` of ``()`` means "every registered scenario".  Note the
    timings a bench produces are inherently machine-dependent; the
    manifest records them outside its deterministic core.
    """

    kind: ClassVar[str] = "bench"

    scenarios: Tuple[str, ...] = ()
    repeats: int = 3
    quick: bool = False

    def __post_init__(self) -> None:
        super().__post_init__()
        _require(self.repeats >= 1, "bench repeats must be >= 1")

    def _payload_dict(self) -> Dict[str, object]:
        return {
            "scenarios": list(self.scenarios),
            "repeats": self.repeats,
            "quick": self.quick,
        }

    @classmethod
    def _from_payload(cls, data: Mapping[str, object]) -> "BenchSpec":
        return cls(
            name=str(data["name"]),
            seed=int(data.get("seed", 0)),
            description=str(data.get("description", "")),
            scenarios=_tuple_of(data.get("scenarios")),
            repeats=int(data.get("repeats", 3)),
            quick=bool(data.get("quick", False)),
        )


_SPEC_KINDS: Dict[str, Type[ExperimentSpec]] = {
    ScenarioSpec.kind: ScenarioSpec,
    SweepSpec.kind: SweepSpec,
    BenchSpec.kind: BenchSpec,
}

#: Kinds defined by optional subsystems, resolved on first use so this
#: module never imports them eagerly (repro.chaos imports repro.experiment;
#: the reverse edge would be a cycle).  Importing the named module must
#: call :func:`register_spec_kind` as a side effect.
_LAZY_KINDS: Dict[str, str] = {
    "campaign": "repro.chaos",
    "federation": "repro.federation",
}


def register_spec_kind(cls: Type[ExperimentSpec]) -> Type[ExperimentSpec]:
    """Register an :class:`ExperimentSpec` subclass under its ``kind``.

    Makes the kind parseable by :meth:`ExperimentSpec.from_dict` (and so
    by ``repro run`` / ``repro specs``).  Usable as a class decorator.
    Re-registering the same class is a no-op; registering a *different*
    class under a taken kind raises.
    """
    kind = cls.kind
    if not kind:
        raise ConfigurationError(
            f"{cls.__name__} has no 'kind' class attribute to register")
    existing = _SPEC_KINDS.get(kind)
    if existing is not None and existing is not cls:
        raise ConfigurationError(
            f"spec kind {kind!r} is already registered to "
            f"{existing.__name__}")
    _SPEC_KINDS[kind] = cls
    return cls


def spec_kinds() -> Tuple[str, ...]:
    """Every parseable spec kind, lazy ones included (sorted)."""
    return tuple(sorted(set(_SPEC_KINDS) | set(_LAZY_KINDS)))


def registered_spec_kinds() -> Tuple[str, ...]:
    """Kinds whose classes are already imported (sorted)."""
    return tuple(sorted(_SPEC_KINDS))


def lazy_spec_kinds() -> Tuple[str, ...]:
    """Kinds that would import their provider module on first parse
    (sorted).  Callers that only need to *list* specs can treat these
    from the raw JSON instead of parsing, keeping listing side-effect
    free (see ``repro specs``)."""
    return tuple(sorted(set(_LAZY_KINDS) - set(_SPEC_KINDS)))


def _resolve_kind(kind: object) -> Optional[Type[ExperimentSpec]]:
    cls = _SPEC_KINDS.get(kind)
    if cls is None and kind in _LAZY_KINDS:
        import importlib

        importlib.import_module(_LAZY_KINDS[kind])
        cls = _SPEC_KINDS.get(kind)
    return cls


def load_spec(path: os.PathLike | str) -> ExperimentSpec:
    """Alias for :meth:`ExperimentSpec.from_file` (reads better at call
    sites: ``spec = load_spec("specs/linecard_softfail.json")``)."""
    return ExperimentSpec.from_file(path)

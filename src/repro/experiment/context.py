"""RunContext: the *how* of an experiment run.

A spec says *what* to run; a :class:`RunContext` says *how* — pool
size, result cache, artifact directory, tracer, metrics registry, and
the seed tree.  The same spec executed through any context yields the
same numbers; contexts only change speed and observability.  That
separation (run description vs. run configuration) follows the
run/config split of reproducible-workflow frameworks: the spec travels
in a repo, the context is a property of the machine running it.

Seed tree
---------
The context derives every subsystem seed from the spec's root seed via
:func:`repro.exec.seeding.derive_seed` on a labelled path::

    ctx.bind(spec.seed)
    ctx.seed("scenario")          # stable, collision-free 64-bit seeds
    ctx.seed("sweep", "point", 3)

so adding a new consumer of randomness never shifts anyone else's
stream — the property that makes "same spec + seed ⇒ same manifest
digest" hold as the system grows.
"""

from __future__ import annotations

import os
import pathlib
from typing import Callable, Dict, Mapping, Optional

from ..errors import ConfigurationError
from ..exec.cache import ResultCache
from ..exec.runner import ParallelRunner
from ..exec.seeding import derive_seed
from ..telemetry import MetricsRegistry, ensure_tracer
from ..vectorize import check_engine, default_backend

__all__ = ["RunContext", "DEFAULT_RUNS_DIR"]

#: Default root for per-run artifact directories.
DEFAULT_RUNS_DIR = "runs"


class RunContext:
    """Execution environment for :func:`repro.experiment.run_experiment`.

    Parameters
    ----------
    workers:
        Process-pool size for sweep fan-out; ``None``/``0``/``1`` runs
        serially.  Results are byte-identical either way.
    cache:
        A :class:`~repro.exec.cache.ResultCache`, a directory path to
        create one at, or None.  Applies uniformly: sweep grid points
        *and* whole scenario runs are cached.
    artifacts:
        Directory to write run artifacts (spec/result/manifest) under;
        defaults to ``runs/<spec name>/``.  None plus ``persist=False``
        keeps everything in memory.
    trace:
        ``True`` for a fresh tracer or an existing
        :class:`~repro.telemetry.Tracer`; rides into scenario runs.
        Traced scenario runs bypass the result cache (a cache hit could
        not replay the events).
    metrics:
        Shared :class:`~repro.telemetry.MetricsRegistry`; the cache and
        runner counters land here so one registry shows the whole run.
    backend:
        Simulation engine for the run — any
        :data:`repro.vectorize.SIM_ENGINES` member, validated here so a
        typo fails at context construction, not mid-run.  None (default)
        defers to :func:`repro.vectorize.default_backend` at execution
        time.  Exact-tier backends never change results (bit-identity);
        the approximate tier ("fluid"/"hybrid") does, so the resolved
        engine is recorded in the manifest's run section and joins the
        scenario cache identity.
    progress:
        Optional observer ``fn(event, fields)`` for live run progress
        — per-point completions land here as ``("point", {...})`` in
        completion order.  Pure observability: results and manifest
        digests are identical with or without it (how
        :mod:`repro.serve` streams partial results without touching
        run identity).  Exceptions from the observer propagate — a
        broken observer should fail loudly, not silently skew what an
        operator sees.
    """

    def __init__(self, *, workers: Optional[int] = None,
                 cache: Optional[ResultCache | str | os.PathLike] = None,
                 artifacts: Optional[os.PathLike | str] = None,
                 trace=None,
                 metrics: Optional[MetricsRegistry] = None,
                 backend: Optional[str] = None,
                 progress: Optional[Callable[
                     [str, Mapping[str, object]], None]] = None) -> None:
        self.workers = max(1, int(workers or 1))
        self.backend = check_engine(backend) if backend is not None else None
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if isinstance(cache, (str, os.PathLike)):
            cache = ResultCache(cache, metrics=self.metrics)
        self.cache = cache
        self.artifacts = (pathlib.Path(artifacts)
                          if artifacts is not None else None)
        self.tracer = ensure_tracer(trace)
        self.progress = progress
        self._root_seed: Optional[int] = None

    @classmethod
    def from_env(cls, **overrides) -> "RunContext":
        """A context honoring the harness env knobs.

        ``REPRO_WORKERS`` sets the pool size, ``REPRO_CACHE`` the cache
        (``1`` = default ``.repro-cache/``, anything else = the
        directory) — the same contract ``benchmarks/_common.py``
        established for the bench harness — and ``REPRO_BACKEND`` the
        simulation engine (validated here, so a bad value is a
        :class:`~repro.errors.ConfigurationError` at startup rather
        than a traceback from the first kernel call).
        """
        if "workers" not in overrides:
            value = os.environ.get("REPRO_WORKERS", "")
            overrides["workers"] = int(value) if value else None
        if "cache" not in overrides:
            value = os.environ.get("REPRO_CACHE", "")
            if value and value != "0":
                from ..exec.cache import DEFAULT_CACHE_DIR
                overrides["cache"] = (DEFAULT_CACHE_DIR if value == "1"
                                      else value)
        if "backend" not in overrides:
            value = os.environ.get("REPRO_BACKEND", "")
            overrides["backend"] = check_engine(value) if value else None
        return cls(**overrides)

    def resolved_backend(self) -> str:
        """The engine this context's runs execute on: the explicit
        ``backend`` knob, else the process default (which itself honors
        ``REPRO_BACKEND``)."""
        return self.backend if self.backend is not None else default_backend()

    # -- seed tree ------------------------------------------------------------
    def bind(self, root_seed: int) -> "RunContext":
        """Anchor the seed tree at a spec's root seed; returns self."""
        self._root_seed = int(root_seed)
        return self

    @property
    def root_seed(self) -> int:
        if self._root_seed is None:
            raise ConfigurationError(
                "RunContext has no root seed; call bind(spec.seed) first")
        return self._root_seed

    def seed(self, *path: object) -> int:
        """A stable 64-bit seed for the labelled ``path`` under the root.

        Pure function of ``(root_seed, path)`` — order-sensitive,
        scheduling-independent, identical in every worker process.
        """
        if not path:
            return self.root_seed
        return derive_seed(self.root_seed,
                           {"path": [str(p) for p in path]})

    # -- execution plumbing ---------------------------------------------------
    def emit_progress(self, event: str, **fields: object) -> None:
        """Hand an observability event to the progress observer (if any)."""
        if self.progress is not None:
            self.progress(event, fields)

    def point_observer(self):
        """The ``on_outcome``/``on_point`` callback for this context's
        progress observer, or None when no one is listening."""
        if self.progress is None:
            return None

        def observe(outcome) -> None:
            self.emit_progress("point", index=outcome.index,
                               cached=outcome.cached, ok=outcome.ok)
        return observe

    def runner(self, *, base_seed: Optional[int] = None,
               seed_param: str = "seed",
               code_version: Optional[str] = None,
               cached: bool = True) -> ParallelRunner:
        """A :class:`ParallelRunner` wired to this context's knobs."""
        return ParallelRunner(
            self.workers,
            cache=self.cache if cached else None,
            base_seed=base_seed,
            seed_param=seed_param,
            code_version=code_version,
            metrics=self.metrics,
            on_outcome=self.point_observer(),
        )

    def artifact_dir(self, name: str) -> pathlib.Path:
        """The (created) artifact directory for a run of spec ``name``."""
        root = (self.artifacts if self.artifacts is not None
                else pathlib.Path(DEFAULT_RUNS_DIR) / name)
        root.mkdir(parents=True, exist_ok=True)
        return root

    def stats(self) -> Dict[str, int]:
        """Counter snapshot (cache + runner) for manifests and CLIs."""
        out: Dict[str, int] = {}
        for metric in self.metrics:
            if getattr(metric, "kind", "") != "counter":
                continue
            label = (f"{metric.component}.{metric.name}"
                     if metric.component else metric.name)
            out[label] = int(metric.value)
        return out

"""Command-line interface: ``python -m repro.cli <command>``.

Gives operators the library's main workflows without writing Python:

* ``designs``  — list the built-in notional designs (paper Figs 3-7);
* ``audit``    — run the four-pattern compliance audit on a design;
* ``transfer`` — simulate a data transfer over a design;
* ``mathis``   — Eq 1/Eq 2 calculator (throughput, required window);
* ``upgrade``  — plan + apply the Science DMZ upgrade to the baseline
  campus and show the before/after audits;
* ``trace``    — run a traced soft-failure scenario and export the
  event log (Chrome ``trace_event`` JSON + optional JSONL);
* ``sweep``    — parallel, cacheable parameter studies (Figure 1's
  loss×RTT grid from the command line);
* ``run``      — execute a serializable experiment spec
  (``specs/*.json``) through the experiment layer, writing a
  provenance manifest; ``--golden`` gates on recorded digests;
* ``chaos``    — run a fault campaign against its invariant oracles
  (or replay a single shrunk schedule artifact); exits 1 on any
  oracle violation;
* ``specs``    — list the spec files in a directory with their digests;
* ``bench``    — time the simulator's hot paths and gate against the
  committed performance baseline (``benchmarks/baseline.json``);
* ``serve``    — run the multi-tenant experiment service (HTTP JSON
  API, bounded fair queue, shared result cache; SIGTERM drains
  gracefully);
* ``submit``   — send a spec to a running service and wait for the
  manifest (identical digests to ``repro run``);
* ``jobs``     — list a service's jobs or show its metrics snapshot.

Exit codes
----------
Every command follows one convention:

===== ==========================================================
code  meaning
===== ==========================================================
0     success — the command did what was asked
1     domain failure — valid input, bad outcome: audit failed,
      golden digests drifted, an oracle was violated, a bench
      regressed, a job failed, the service was unreachable
      (:class:`~repro.errors.ServeError`)
2     bad input — unusable spec/flags/file
      (:class:`~repro.errors.ReproError` others, argparse errors)
===== ==========================================================

"Retryable" is the rule of thumb: 2 means fix the invocation, 1 means
investigate the system under test.

Examples
--------
::

    python -m repro.cli audit simple-science-dmz
    python -m repro.cli transfer simple-science-dmz --size 239.5GB \
        --files 273 --tool globus
    python -m repro.cli mathis --mss 9000B --rtt 50ms --loss 4.5e-5
    python -m repro.cli upgrade
    python -m repro.cli trace simple-science-dmz --fault linecard \
        --at 30m --until 2h --out dmz.trace.json
    python -m repro.cli sweep mathis --rtt 1,10,50,100 \
        --loss 4.5e-5,1e-4 --workers 4 --cache --stats
    python -m repro.cli run specs/linecard_softfail.json --cache --stats
    python -m repro.cli serve --workers 4 --cache
    python -m repro.cli submit specs/fig1_tcp_loss_quick.json
    python -m repro.cli specs
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional

import numpy as np

from .analysis import ResultTable
from .core import apply_upgrade, plan_upgrade
from .core.designs import DesignBundle
from .dtn import Dataset, TransferPlan, TOOL_REGISTRY
from .errors import ReproError, ServeError
# The design registry moved to the experiment layer (specs refer to the
# same names); re-exported here because callers and tests iterate
# ``cli.DESIGNS``.
from .experiment.registry import DESIGNS, mathis_grid_point
from .tcp.mathis import mathis_throughput, required_window
from .units import parse_rate, parse_size, parse_time
from .vectorize import SIM_ENGINES

__all__ = ["main", "DESIGNS", "EXIT_OK", "EXIT_DOMAIN_FAILURE",
           "EXIT_BAD_INPUT"]

#: The exit-code convention (see the module docstring's table).
EXIT_OK = 0
EXIT_DOMAIN_FAILURE = 1
EXIT_BAD_INPUT = 2


def _build(name: str) -> DesignBundle:
    try:
        return DESIGNS[name]()
    except KeyError:
        known = ", ".join(sorted(DESIGNS))
        raise ReproError(f"unknown design {name!r}; known designs: {known}")


def cmd_designs(args: argparse.Namespace) -> int:
    table = ResultTable("built-in designs", ["name", "figure", "description"])
    figures = {
        "general-purpose-campus": "§2 baseline",
        "simple-science-dmz": "Figure 3",
        "supercomputer-center": "Figure 4",
        "big-data-site": "Figure 5",
        "colorado-campus": "Figures 6/7",
        "federated-wan": "§7.1 federation",
    }
    for name in sorted(DESIGNS):
        bundle = DESIGNS[name]()
        table.add_row([name, figures[name], bundle.description])
    print(table.render_text())
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    bundle = _build(args.design)
    report = bundle.audit()
    print(report.render_text())
    return 0 if report.passed else 1


def cmd_transfer(args: argparse.Namespace) -> int:
    bundle = _build(args.design)
    size = parse_size(args.size)
    dataset = Dataset("cli-transfer", size, file_count=args.files)
    dst = args.dst or bundle.dtns[0]
    policy = bundle.science_policy if not args.via_firewall else {}
    plan = TransferPlan(bundle.topology, bundle.remote_dtn, dst, dataset,
                        args.tool, policy=policy)
    rng = np.random.default_rng(args.seed)
    report = plan.execute(rng)
    print(report.summary())
    if report.expected_corrupt_files > 0.01:
        print(f"warning: ~{report.expected_corrupt_files:.2f} files "
              "expected silently corrupted (tool has no checksums)")
    return 0


def cmd_mathis(args: argparse.Namespace) -> int:
    mss = parse_size(args.mss)
    rtt = parse_time(args.rtt)
    if args.loss is not None:
        rate = mathis_throughput(mss, rtt, args.loss)
        print(f"Mathis ceiling: {rate.human()} "
              f"(mss {mss.human()}, rtt {rtt.human()}, loss {args.loss:g})")
    if args.rate is not None:
        target = parse_rate(args.rate)
        window = required_window(target, rtt)
        print(f"required window for {target.human()} at {rtt.human()}: "
              f"{window.human()}")
    if args.loss is None and args.rate is None:
        print("nothing to compute: pass --loss and/or --rate", file=sys.stderr)
        return 2
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from .core import lint_path
    bundle = _build(args.design)
    dst = args.dst or bundle.dtns[0]
    policy = bundle.science_policy if not args.via_firewall else {}
    findings = lint_path(bundle.topology, bundle.remote_dtn, dst,
                         policy=policy)
    if not findings:
        print(f"path {bundle.remote_dtn} -> {dst}: clean "
              "(no §5 hygiene findings)")
        return 0
    for finding in findings:
        print(str(finding))
    worst = findings[0].level.value
    print(f"\n{len(findings)} findings; worst severity: {worst}")
    return 1


def cmd_export(args: argparse.Namespace) -> int:
    import json

    from .netsim import topology_to_dict
    bundle = _build(args.design)
    data = topology_to_dict(bundle.topology)
    text = json.dumps(data, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {bundle.topology.node_count} nodes / "
              f"{bundle.topology.link_count} links to {args.output}")
    else:
        print(text)
    return 0


def cmd_describe(args: argparse.Namespace) -> int:
    import json

    from .netsim import topology_from_dict
    with open(args.file, "r", encoding="utf-8") as handle:
        topo = topology_from_dict(json.load(handle))
    table = ResultTable(f"topology {topo.name!r}",
                        ["node", "kind", "tags"])
    for node in sorted(topo.nodes(), key=lambda n: n.name):
        table.add_row([node.name, node.kind, ",".join(sorted(node.tags))])
    print(table.render_text())
    print(f"{topo.link_count} links")
    return 0


#: Fault factories for ``repro trace --fault``.
TRACE_FAULTS = {
    "linecard": "FailingLineCard",
    "optics": "DirtyOptics",
    "cpu": "ManagementCpuForwarding",
    "duplex": "DuplexMismatch",
}


def cmd_trace(args: argparse.Namespace) -> int:
    from .devices import faults as fault_lib
    from .scenario import Scenario
    from .telemetry import write_chrome_trace, write_jsonl

    bundle = _build(args.design)
    hosts = list(bundle.perfsonar) or bundle.dtns[:1]
    hosts = [h for h in hosts if h != bundle.remote_dtn]
    hosts.append(bundle.remote_dtn)
    if len(hosts) < 2:
        raise ReproError(
            f"design {args.design!r} has no host to mesh against the "
            "remote DTN; cannot build a traced scenario")

    node = args.node or bundle.border
    fault = getattr(fault_lib, TRACE_FAULTS[args.fault])()
    at = parse_time(args.at)
    until = parse_time(args.until)
    repair = parse_time(args.repair_at) if args.repair_at else None
    for label, when in (("fault", at), ("repair", repair)):
        if when is not None and when.s >= until.s:
            raise ReproError(
                f"{label} time {when.human()} is not before the horizon "
                f"{until.human()}")

    scenario = Scenario(bundle, seed=args.seed)
    scenario.with_mesh(hosts)
    scenario.inject(node, fault, at=at)
    if repair is not None:
        scenario.repair_at(repair)
    outcome = scenario.run(until=until, trace=True)
    tracer = outcome.trace

    print(outcome.summary())
    print()
    out = args.out or f"{args.design}.trace.json"
    path = write_chrome_trace(tracer.events(), out, metrics=tracer.metrics)
    print(f"wrote {len(tracer.events())} events to {path} "
          "(load in chrome://tracing or ui.perfetto.dev)")
    if args.jsonl:
        jsonl_path = write_jsonl(tracer.events(), args.jsonl)
        print(f"wrote JSONL log to {jsonl_path}")
    print()
    print("metrics:")
    print(tracer.metrics.render_text())
    if args.tail > 0:
        print()
        print(tracer.recorder.render_tail(args.tail))
    return 0


#: Swept functions for ``repro sweep <target>`` (the full registry —
#: including the Figure 1 measured grid — lives in
#: :data:`repro.experiment.registry.SWEEP_TARGETS`; this quick-CLI
#: command keeps only the grid its ``--rtt/--loss/--mss`` flags fit).
SWEEP_TARGETS: Dict[str, Callable[..., object]] = {
    "mathis": mathis_grid_point,
}


def _csv_floats(text: str, option: str) -> list:
    try:
        return [float(v) for v in text.split(",") if v.strip() != ""]
    except ValueError:
        raise ReproError(f"{option} expects comma-separated numbers, "
                         f"got {text!r}")


def cmd_sweep(args: argparse.Namespace) -> int:
    import json
    import os

    from .analysis.sweep import sweep
    from .exec import ResultCache

    fn = SWEEP_TARGETS[args.target]
    rtts = _csv_floats(args.rtt, "--rtt")
    losses = _csv_floats(args.loss, "--loss")
    if not rtts or not losses:
        raise ReproError("sweep needs at least one --rtt and one --loss")
    if any(l <= 0 for l in losses):
        raise ReproError("--loss values must be positive (the Mathis "
                         "model diverges at zero loss)")
    grid = {
        "rtt_ms": rtts,
        "loss": losses,
        "mss_bytes": [int(parse_size(args.mss).bytes)],
    }

    workers = args.workers
    if workers is None:
        env = os.environ.get("REPRO_WORKERS", "")
        workers = int(env) if env else 1
    cache = None
    if args.cache or args.cache_dir is not None:
        cache = ResultCache(args.cache_dir or
                            os.environ.get("REPRO_CACHE_DIR",
                                           ".repro-cache"))

    result = sweep(fn, grid, value_label="gbps", workers=workers,
                   cache=cache)
    table = result.table(
        f"{args.target} sweep — {len(result.records)} points, "
        f"workers={workers}, cache={'on' if cache else 'off'}")
    print(table.render_text())

    stats = result.stats or {}
    if args.stats:
        print()
        print("execution stats:")
        registry = (cache.metrics if cache is not None else None)
        if registry is not None:
            print(registry.render_text())
        else:
            for key in sorted(stats):
                print(f"  {key}: {stats[key]}")
    if args.stats_json:
        with open(args.stats_json, "w", encoding="utf-8") as handle:
            json.dump({"target": args.target, "grid_points":
                       len(result.records), **stats},
                      handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote execution stats to {args.stats_json}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    import json
    import os

    from .experiment import ExperimentSpec, RunContext, run_experiment

    spec = ExperimentSpec.from_file(args.spec)

    workers = args.workers
    if workers is None:
        env = os.environ.get("REPRO_WORKERS", "")
        workers = int(env) if env else 1
    cache = None
    if args.cache or args.cache_dir is not None:
        cache = (args.cache_dir
                 or os.environ.get("REPRO_CACHE_DIR", ".repro-cache"))
    ctx = RunContext.from_env(workers=workers, cache=cache,
                              artifacts=args.artifacts,
                              **({"backend": args.backend}
                                 if args.backend else {}))

    result = run_experiment(spec, ctx, persist=not args.no_persist)
    manifest = result.manifest

    what = spec.description or spec.name
    print(f"{spec.kind} {spec.name!r}: {what}")
    from .analysis.sweep import SweepResult
    if isinstance(result.value, SweepResult):
        print(result.value.table(spec.name).render_text())
    for key in sorted(manifest.summary):
        print(f"  {key}: {manifest.summary[key]}")
    if result.cached:
        print("  (served from the result cache)")
    print(f"  engine:          {manifest.backend}")
    print(f"  spec digest:     {manifest.spec_digest}")
    print(f"  result digest:   {manifest.result_digest}")
    print(f"  manifest digest: {manifest.digest()}")
    if result.manifest_path:
        print(f"  artifacts:       {result.artifact_dir}/")

    if args.stats:
        print()
        print("execution stats:")
        stats = ctx.stats()
        for key in sorted(stats):
            print(f"  {key}: {stats[key]}")

    if args.golden:
        try:
            with open(args.golden, "r", encoding="utf-8") as handle:
                golden = json.load(handle)
        except (OSError, ValueError) as exc:
            raise ReproError(f"cannot read golden file "
                             f"{args.golden!r}: {exc}")
        entry = golden.get(spec.name)
        if entry is None:
            raise ReproError(
                f"golden file {args.golden!r} has no entry for "
                f"spec {spec.name!r}")
        drift = []
        for field in ("spec_digest", "result_digest"):
            want = entry.get(field)
            got = getattr(manifest, field)
            if want != got:
                drift.append(f"  {field}: golden {want} != run {got}")
        if drift:
            print(f"GOLDEN DRIFT for {spec.name!r}:", file=sys.stderr)
            for line in drift:
                print(line, file=sys.stderr)
            return 1
        print(f"golden: spec and result digests match {args.golden}")
    return 0


def _parse_oracle_arg(arg: str):
    """``name[:k=v,...]`` -> ``(name, {k: v})`` with JSON-typed values."""
    import json

    name, _, rest = arg.partition(":")
    name = name.strip()
    if not name:
        raise ReproError(f"bad --oracle {arg!r}: empty oracle name")
    params = {}
    if rest:
        for piece in rest.split(","):
            key, sep, raw = piece.partition("=")
            if not sep or not key.strip():
                raise ReproError(
                    f"bad --oracle {arg!r}: expected NAME[:k=v,...], "
                    f"got parameter piece {piece!r}")
            try:
                params[key.strip()] = json.loads(raw)
            except ValueError:
                params[key.strip()] = raw
    return name, params


def cmd_chaos(args: argparse.Namespace) -> int:
    import json
    import os

    from .chaos import get_oracle
    from .chaos.runner import _campaign_point
    from .chaos.report import render_report
    from .chaos.spec import CampaignSpec
    from .exec.seeding import canonical_json
    from .experiment import ExperimentSpec, RunContext, run_experiment
    from .experiment.spec import ScenarioSpec

    spec = ExperimentSpec.from_file(args.spec)
    if args.seed is not None:
        import dataclasses

        spec = dataclasses.replace(spec, seed=args.seed)
    oracle_items = [_parse_oracle_arg(a) for a in args.oracle or []]
    for name, _ in oracle_items:
        get_oracle(name)  # fail fast with the known-oracle list

    if isinstance(spec, ScenarioSpec):
        # Replay mode: judge one concrete schedule (e.g. a shrunk
        # repro-*.json artifact) against the oracles, in-process.
        if not oracle_items:
            from .chaos import default_oracles

            oracle_items = [(n, {}) for n in default_oracles()]
        result = _campaign_point(
            spec.to_json(),
            canonical_json([[n, p] for n, p in oracle_items]),
            canonical_json(None))
        print(f"replayed schedule {spec.name!r} "
              f"(seed {spec.seed}) against "
              f"{len(oracle_items)} oracle(s)")
        for key in sorted(result["summary"]):
            print(f"  {key}: {result['summary'][key]}")
        if result["violations"]:
            for oracle, msgs in sorted(result["violations"].items()):
                for msg in msgs:
                    print(f"VIOLATION {oracle}: {msg}", file=sys.stderr)
            return 1
        print("every oracle held")
        return 0

    if not isinstance(spec, CampaignSpec):
        raise ReproError(
            f"`repro chaos` needs a campaign or scenario spec, got "
            f"kind {spec.kind!r} from {args.spec!r}")
    if oracle_items:
        from .chaos.spec import OracleSpec
        import dataclasses

        spec = dataclasses.replace(spec, oracles=tuple(
            OracleSpec(name=n, params=tuple(sorted(p.items())))
            for n, p in oracle_items))

    workers = args.workers
    if workers is None:
        env = os.environ.get("REPRO_WORKERS", "")
        workers = int(env) if env else 1
    cache = None
    if args.cache or args.cache_dir is not None:
        cache = (args.cache_dir
                 or os.environ.get("REPRO_CACHE_DIR", ".repro-cache"))
    ctx = RunContext(workers=workers, cache=cache,
                     artifacts=args.artifacts)

    result = run_experiment(spec, ctx, persist=not args.no_persist)
    print(render_report(result.payload))
    print(f"  spec digest:     {result.manifest.spec_digest}")
    print(f"  result digest:   {result.manifest.result_digest}")
    if result.manifest_path:
        print(f"  artifacts:       {result.artifact_dir}/")
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(result.payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote campaign report to {args.report}")
    if args.stats:
        print()
        print("execution stats:")
        stats = ctx.stats()
        for key in sorted(stats):
            print(f"  {key}: {stats[key]}")
    return 1 if result.manifest.summary.get("failed") else 0


def cmd_specs(args: argparse.Namespace) -> int:
    import hashlib
    import json
    import pathlib

    from .errors import ConfigurationError
    from .exec.seeding import canonical_json
    from .experiment import ExperimentSpec, lazy_spec_kinds, spec_kinds
    from .experiment.spec import SPEC_SCHEMA_VERSION

    root = pathlib.Path(args.dir)
    if not root.is_dir():
        raise ReproError(f"no spec directory {str(root)!r}")
    rows = []
    bad = 0
    for path in sorted(root.glob("*.json")):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError) as exc:
            bad += 1
            rows.append([path.name, "-", "-", "-", "-",
                         f"UNREADABLE: {exc}"])
            continue
        if not isinstance(data, dict) or "kind" not in data:
            continue  # sidecar JSON (e.g. golden.json), not a spec
        kind = data.get("kind")
        if kind in lazy_spec_kinds():
            # Listing must not import optional subsystems as a side
            # effect; committed lazy-kind specs are full `save()` dumps,
            # so their canonical-JSON hash IS the parsed spec's digest.
            if data.get("schema") != SPEC_SCHEMA_VERSION or \
                    not data.get("name"):
                bad += 1
                rows.append([path.name, str(kind), "-", "-", "-",
                             "UNREADABLE: bad schema or missing name"])
                continue
            digest = hashlib.sha256(
                canonical_json(data).encode("utf-8")).hexdigest()
            rows.append([path.name, str(kind), data["name"],
                         int(data.get("seed", 0)), digest[:12],
                         str(data.get("description", ""))])
            continue
        if kind not in spec_kinds():
            bad += 1
            rows.append([path.name, str(kind), "-", "-", "-",
                         f"UNREADABLE: unknown kind {kind!r}"])
            continue
        try:
            spec = ExperimentSpec.from_dict(data)
        except ConfigurationError as exc:
            bad += 1
            rows.append([path.name, "-", "-", "-", "-",
                         f"UNREADABLE: {exc}"])
            continue
        rows.append([path.name, spec.kind, spec.name, spec.seed,
                     spec.digest()[:12], spec.description])
    if not rows:
        print(f"no *.json specs under {root}/")
        return 0
    table = ResultTable(f"specs under {root}/",
                        ["file", "kind", "name", "seed", "digest",
                         "description"])
    for row in rows:
        table.add_row(row)
    print(table.render_text())
    return 1 if bad else 0


def cmd_bench(args: argparse.Namespace) -> int:
    from . import bench

    names = None
    if args.only:
        names = [n.strip() for n in args.only.split(",") if n.strip()]

    def progress(name: str, seconds: float) -> None:
        print(f"  {name:<24s} {seconds * 1000:10.1f} ms")

    print("running bench suite"
          + (" (quick mode)" if args.quick else "") + ":")
    payload = bench.run_suite(names, repeats=args.repeats,
                              quick=args.quick, progress=progress)
    print(f"  {'calibration':<24s} "
          f"{payload['calibration'] * 1000:10.1f} ms")

    if args.out:
        bench.write_json(payload, args.out)
        print(f"wrote results to {args.out}")
    if args.write_baseline:
        bench.write_json(payload, args.write_baseline)
        print(f"wrote baseline to {args.write_baseline}")

    if not args.compare:
        return 0
    baseline = bench.load_baseline(args.compare)
    rows = bench.compare(payload, baseline, tolerance=args.tolerance)
    if not rows:
        print(f"no shared scenarios between this run and {args.compare}")
        return 0
    table = ResultTable(
        f"vs baseline {args.compare} (tolerance {args.tolerance:.0%})",
        ["scenario", "baseline", "current", "ratio", "status"])
    regressions = 0
    for row in rows:
        regressed = bool(row["regressed"])
        regressions += regressed
        table.add_row([
            row["name"],
            f"{row['baseline_s'] * 1000:.1f}ms",
            f"{row['current_s'] * 1000:.1f}ms",
            f"{row['ratio']:.2f}x",
            "REGRESSED" if regressed else "ok",
        ])
    print(table.render_text())
    if regressions:
        print(f"{regressions} scenario(s) regressed beyond "
              f"{args.tolerance:.0%}", file=sys.stderr)
        return 1
    return 0


def cmd_upgrade(args: argparse.Namespace) -> int:
    bundle = _build(args.design)
    hosts = bundle.dtns
    plan = plan_upgrade(bundle.topology, science_hosts=hosts,
                        border=bundle.border, wan=bundle.wan)
    print("BEFORE:")
    print(plan.before.render_text())
    print()
    if not plan.needed:
        print("design already passes; nothing to do")
        return 0
    result = apply_upgrade(bundle.topology, science_hosts=hosts,
                           border=bundle.border, wan=bundle.wan)
    print(result.render_text())
    print()
    print("AFTER:")
    print(result.after.render_text())
    return 0 if result.successful else 1


def _default_serve_url() -> str:
    import os

    from .serve import DEFAULT_HOST, DEFAULT_PORT

    return os.environ.get("REPRO_SERVE_URL",
                          f"http://{DEFAULT_HOST}:{DEFAULT_PORT}")


def cmd_serve(args: argparse.Namespace) -> int:
    import os

    from .serve import ExperimentService, serve_forever

    cache = None
    if args.cache or args.cache_dir is not None:
        cache = (args.cache_dir
                 or os.environ.get("REPRO_CACHE_DIR", ".repro-cache"))
    workers = args.workers
    if workers is None:
        env = os.environ.get("REPRO_WORKERS", "")
        workers = int(env) if env else 2
    service = ExperimentService(
        workers=workers,
        capacity=args.capacity,
        cache=cache,
        state_dir=args.state_dir,
        inner_workers=args.inner_workers,
    )
    serve_forever(service, host=args.host, port=args.port)
    return EXIT_OK


def cmd_submit(args: argparse.Namespace) -> int:
    import json

    from .experiment import ExperimentSpec
    from .serve import ServiceClient

    # Parse locally first: a bad spec is the *user's* problem (exit 2)
    # and should not need a round-trip to find out.
    spec = ExperimentSpec.from_file(args.spec)
    client = ServiceClient(args.url, timeout=args.timeout)

    job = client.submit(json.loads(spec.to_json()), tenant=args.tenant,
                        priority=args.priority)
    if args.no_wait:
        if args.json:
            print(json.dumps(job, indent=2, sort_keys=True))
        else:
            print(f"submitted {job['id']}: {spec.kind} {spec.name!r} "
                  f"state={job['state']}"
                  + (f" (deduped: {job['deduped']})"
                     if job.get("deduped") else ""))
        return EXIT_OK

    result = client.result(job["id"], timeout=args.timeout)
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
        return EXIT_OK
    manifest = result.get("manifest") or {}
    print(f"{result['kind']} {result['name']!r}: job {result['id']} "
          f"{result['state']}"
          + (f" (deduped: {result['deduped']})"
             if result.get("deduped") else ""))
    for key in sorted(manifest.get("summary") or {}):
        print(f"  {key}: {manifest['summary'][key]}")
    print(f"  spec digest:     {manifest.get('spec_digest')}")
    print(f"  result digest:   {manifest.get('result_digest')}")
    latency = result.get("queue_latency_s")
    if latency is not None:
        print(f"  queue latency:   {latency * 1000:.1f} ms")
    return EXIT_OK


def cmd_jobs(args: argparse.Namespace) -> int:
    import json

    from .serve import ServiceClient

    client = ServiceClient(args.url, timeout=args.timeout)
    if args.metrics:
        print(json.dumps(client.metrics(), indent=2, sort_keys=True))
        return EXIT_OK
    rows = client.jobs(tenant=args.tenant, limit=args.limit)
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
        return EXIT_OK
    if not rows:
        print("no jobs")
        return EXIT_OK
    table = ResultTable(
        f"jobs at {args.url}",
        ["id", "tenant", "prio", "kind", "name", "state", "dedup",
         "points"])
    for job in rows:
        done = job.get("points_done")
        total = job.get("points_total")
        points = f"{done}/{total}" if total else (str(done) if done
                                                  else "-")
        table.add_row([job["id"], job["tenant"], job["priority"],
                       job["kind"], job["name"], job["state"],
                       job.get("deduped") or "-", points])
    print(table.render_text())
    return EXIT_OK


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Science DMZ design-pattern simulator (SC'13 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("designs", help="list built-in designs").set_defaults(
        func=cmd_designs)

    p_audit = sub.add_parser("audit", help="run the four-pattern audit")
    p_audit.add_argument("design", choices=sorted(DESIGNS))
    p_audit.set_defaults(func=cmd_audit)

    p_xfer = sub.add_parser("transfer", help="simulate a data transfer")
    p_xfer.add_argument("design", choices=sorted(DESIGNS))
    p_xfer.add_argument("--size", default="100GB",
                        help="dataset size, e.g. 239.5GB (default 100GB)")
    p_xfer.add_argument("--files", type=int, default=100,
                        help="file count (default 100)")
    p_xfer.add_argument("--tool", default="globus",
                        choices=sorted(TOOL_REGISTRY),
                        help="transfer tool (default globus)")
    p_xfer.add_argument("--dst", default=None,
                        help="destination host (default: the design's "
                             "first DTN)")
    p_xfer.add_argument("--via-firewall", action="store_true",
                        help="do not apply the science routing policy")
    p_xfer.add_argument("--seed", type=int, default=0)
    p_xfer.set_defaults(func=cmd_transfer)

    p_math = sub.add_parser("mathis", help="Eq 1 / Eq 2 calculator")
    p_math.add_argument("--mss", default="1460B")
    p_math.add_argument("--rtt", default="50ms")
    p_math.add_argument("--loss", type=float, default=None,
                        help="per-packet loss probability")
    p_math.add_argument("--rate", default=None,
                        help="target rate for the window calculation, "
                             "e.g. 1Gbps")
    p_math.set_defaults(func=cmd_mathis)

    p_lint = sub.add_parser("lint",
                            help="run §5 path-hygiene checks on a design")
    p_lint.add_argument("design", choices=sorted(DESIGNS))
    p_lint.add_argument("--dst", default=None,
                        help="destination host (default: first DTN)")
    p_lint.add_argument("--via-firewall", action="store_true",
                        help="lint the firewalled path instead")
    p_lint.set_defaults(func=cmd_lint)

    p_exp = sub.add_parser("export",
                           help="serialize a built-in design to JSON")
    p_exp.add_argument("design", choices=sorted(DESIGNS))
    p_exp.add_argument("--output", "-o", default=None,
                       help="file path (default: stdout)")
    p_exp.set_defaults(func=cmd_export)

    p_desc = sub.add_parser("describe",
                            help="summarize a serialized topology file")
    p_desc.add_argument("file")
    p_desc.set_defaults(func=cmd_describe)

    p_up = sub.add_parser("upgrade",
                          help="plan + apply a Science DMZ upgrade")
    p_up.add_argument("design", nargs="?",
                      default="general-purpose-campus",
                      choices=sorted(DESIGNS))
    p_up.set_defaults(func=cmd_upgrade)

    p_trace = sub.add_parser(
        "trace",
        help="run a traced soft-failure scenario and export the event log")
    p_trace.add_argument("design", choices=sorted(DESIGNS))
    p_trace.add_argument("--fault", default="linecard",
                         choices=sorted(TRACE_FAULTS),
                         help="soft failure to inject (default linecard)")
    p_trace.add_argument("--node", default=None,
                         help="node to fault (default: the design's border)")
    p_trace.add_argument("--at", default="30m",
                         help="fault onset time (default 30m)")
    p_trace.add_argument("--repair-at", default=None,
                         help="repair time (default: never)")
    p_trace.add_argument("--until", default="2h",
                         help="scenario horizon (default 2h)")
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument("--out", "-o", default=None,
                         help="Chrome trace_event JSON path "
                              "(default <design>.trace.json)")
    p_trace.add_argument("--jsonl", default=None,
                         help="also write the raw event log as JSONL here")
    p_trace.add_argument("--tail", type=int, default=15,
                         help="flight-recorder tail lines to print "
                              "(0 to suppress; default 15)")
    p_trace.set_defaults(func=cmd_trace)

    p_sweep = sub.add_parser(
        "sweep",
        help="run a parameter sweep (parallel, with a result cache)")
    p_sweep.add_argument("target", choices=sorted(SWEEP_TARGETS),
                         help="what to sweep (mathis: Eq 1 over "
                              "loss x RTT, the Figure 1 grid)")
    p_sweep.add_argument("--rtt", default="1,2,5,10,20,40,60,80,100",
                         help="comma-separated RTTs in ms "
                              "(default: the Figure 1 sweep)")
    p_sweep.add_argument("--loss", default="4.5455e-5",
                         help="comma-separated loss probabilities "
                              "(default: the paper's 1/22000)")
    p_sweep.add_argument("--mss", default="9000B",
                         help="segment size (default 9000B jumbo)")
    p_sweep.add_argument("--workers", type=int, default=None,
                         help="process-pool size (default: "
                              "$REPRO_WORKERS or 1)")
    p_sweep.add_argument("--cache", action="store_true",
                         help="cache grid points under .repro-cache/")
    p_sweep.add_argument("--cache-dir", default=None,
                         help="cache directory (implies --cache)")
    p_sweep.add_argument("--stats", action="store_true",
                         help="print execution/cache telemetry counters")
    p_sweep.add_argument("--stats-json", default=None,
                         help="also write the counters as JSON here "
                              "(CI artifact)")
    p_sweep.set_defaults(func=cmd_sweep)

    p_run = sub.add_parser(
        "run",
        help="execute an experiment spec JSON and write its manifest")
    p_run.add_argument("spec", help="path to a spec file (see `repro specs`)")
    p_run.add_argument("--workers", type=int, default=None,
                       help="process-pool size (default: $REPRO_WORKERS "
                            "or 1)")
    p_run.add_argument("--cache", action="store_true",
                       help="cache results under .repro-cache/")
    p_run.add_argument("--cache-dir", default=None,
                       help="cache directory (implies --cache)")
    p_run.add_argument("--artifacts", default=None,
                       help="artifact directory (default runs/<name>/)")
    p_run.add_argument("--no-persist", action="store_true",
                       help="do not write spec/result/manifest files "
                            "(digests are printed regardless)")
    p_run.add_argument("--stats", action="store_true",
                       help="print execution/cache telemetry counters")
    p_run.add_argument("--golden", default=None, metavar="GOLDEN_JSON",
                       help="compare spec/result digests against this "
                            "recorded ledger; exit 1 on drift")
    p_run.add_argument("--backend", default=None, choices=SIM_ENGINES,
                       help="simulation engine (default: $REPRO_BACKEND "
                            "or numpy); fluid/hybrid are the approximate "
                            "mean-field tier and fork the cache identity")
    p_run.set_defaults(func=cmd_run)

    p_chaos = sub.add_parser(
        "chaos",
        help="run a fault campaign against invariant oracles "
             "(exit 1 on violation)")
    p_chaos.add_argument("spec",
                         help="campaign spec JSON, or a scenario spec "
                              "(e.g. a shrunk repro-*.json) to replay")
    p_chaos.add_argument("--seed", type=int, default=None,
                         help="override the spec's root seed")
    p_chaos.add_argument("--oracle", action="append", metavar="NAME[:k=v,..]",
                         help="oracle to apply (repeatable); replaces the "
                              "spec's oracle set")
    p_chaos.add_argument("--workers", type=int, default=None,
                         help="schedule fan-out pool size "
                              "(default $REPRO_WORKERS or 1)")
    p_chaos.add_argument("--cache", action="store_true",
                         help="cache per-schedule results "
                              "(.repro-cache/ or $REPRO_CACHE_DIR)")
    p_chaos.add_argument("--cache-dir", default=None,
                         help="cache directory (implies --cache)")
    p_chaos.add_argument("--artifacts", default=None,
                         help="artifact root (default artifacts/)")
    p_chaos.add_argument("--no-persist", action="store_true",
                         help="skip writing artifacts (digests are "
                              "computed regardless)")
    p_chaos.add_argument("--report", default=None, metavar="PATH",
                         help="also write the campaign report JSON here")
    p_chaos.add_argument("--stats", action="store_true",
                         help="print cache/runner counters")
    p_chaos.set_defaults(func=cmd_chaos)

    p_specs = sub.add_parser(
        "specs", help="list experiment spec files with their digests")
    p_specs.add_argument("--dir", default="specs",
                         help="directory to scan (default specs/)")
    p_specs.set_defaults(func=cmd_specs)

    p_bench = sub.add_parser(
        "bench",
        help="time the simulator hot paths and gate against a baseline")
    p_bench.add_argument("--quick", action="store_true",
                         help="shrunk workloads (CI smoke; compare only "
                              "against a --quick baseline)")
    p_bench.add_argument("--repeats", type=int, default=3,
                         help="timed runs per scenario; best is kept "
                              "(default 3)")
    p_bench.add_argument("--only", default=None,
                         help="comma-separated scenario names "
                              "(default: all)")
    p_bench.add_argument("--out", "-o", default=None,
                         help="write this run's results JSON here")
    p_bench.add_argument("--compare", default=None, metavar="BASELINE",
                         help="compare against a baseline JSON; exit 1 "
                              "on regression")
    p_bench.add_argument("--write-baseline", default=None, metavar="PATH",
                         help="write this run as the new baseline JSON")
    p_bench.add_argument("--tolerance", type=float, default=0.30,
                         help="allowed normalized slowdown before "
                              "--compare fails (default 0.30)")
    p_bench.set_defaults(func=cmd_bench)

    p_serve = sub.add_parser(
        "serve",
        help="run the multi-tenant experiment service (SIGTERM drains)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8351,
                         help="listen port (0 picks a free one; "
                              "default 8351)")
    p_serve.add_argument("--workers", type=int, default=None,
                         help="concurrent jobs (default: $REPRO_WORKERS "
                              "or 2)")
    p_serve.add_argument("--capacity", type=int, default=1024,
                         help="queue bound before 429s (default 1024)")
    p_serve.add_argument("--cache", action="store_true",
                         help="shared result cache under .repro-cache/")
    p_serve.add_argument("--cache-dir", default=None,
                         help="cache directory (implies --cache)")
    p_serve.add_argument("--state-dir", default=None,
                         help="persist the queue here on drain and "
                              "restore it on start")
    p_serve.add_argument("--inner-workers", type=int, default=1,
                         help="process-pool size within one job "
                              "(default 1: jobs are the parallelism)")
    p_serve.set_defaults(func=cmd_serve)

    p_submit = sub.add_parser(
        "submit",
        help="submit a spec to a running service and wait for digests")
    p_submit.add_argument("spec", help="path to a spec file")
    p_submit.add_argument("--url", default=_default_serve_url(),
                          help="service URL (default $REPRO_SERVE_URL "
                               "or the local default port)")
    p_submit.add_argument("--tenant", default="cli",
                          help="tenant name for fair queueing "
                               "(default cli)")
    p_submit.add_argument("--priority", default="normal",
                          choices=["interactive", "normal", "batch"])
    p_submit.add_argument("--timeout", type=float, default=300.0,
                          help="seconds to wait for the result "
                               "(default 300)")
    p_submit.add_argument("--no-wait", action="store_true",
                          help="return after admission; poll with "
                               "`repro jobs`")
    p_submit.add_argument("--json", action="store_true",
                          help="print the raw job document as JSON")
    p_submit.set_defaults(func=cmd_submit)

    p_jobs = sub.add_parser(
        "jobs", help="list a service's jobs / show its metrics")
    p_jobs.add_argument("--url", default=_default_serve_url())
    p_jobs.add_argument("--tenant", default=None,
                        help="only this tenant's jobs")
    p_jobs.add_argument("--limit", type=int, default=None,
                        help="only the most recent N jobs")
    p_jobs.add_argument("--metrics", action="store_true",
                        help="print the service metrics snapshot instead")
    p_jobs.add_argument("--json", action="store_true")
    p_jobs.add_argument("--timeout", type=float, default=30.0)
    p_jobs.set_defaults(func=cmd_jobs)
    return parser


def _check_env_backend() -> None:
    """Fail fast on a bad ``REPRO_BACKEND`` before any command runs.

    A typo'd engine name would otherwise surface as a deep traceback
    from the first kernel call (or worse, from inside a pool worker);
    validating at startup turns it into the standard exit-2
    configuration error.
    """
    import os

    from .vectorize import check_engine

    value = os.environ.get("REPRO_BACKEND", "")
    if value:
        check_engine(value)


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        _check_env_backend()
        return args.func(args)
    except ServeError as exc:
        # Operational failure (unreachable service, failed job, full
        # queue after retries) — the invocation was fine.
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_DOMAIN_FAILURE
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_BAD_INPUT


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

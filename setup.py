"""Setup shim.

Kept alongside pyproject.toml so the package installs in offline
environments that lack the ``wheel`` package (where PEP 660 editable
builds fail): ``python setup.py develop`` needs only setuptools.
"""

from setuptools import setup

setup()

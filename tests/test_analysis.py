"""Tests for result tables, series helpers, and experiment records."""

import numpy as np
import pytest

from repro.analysis import (
    ExperimentRecord,
    ExperimentReport,
    ResultTable,
    ascii_chart,
    decimate,
    rolling_mean,
)
from repro.errors import ConfigurationError


class TestResultTable:
    def test_render_text_alignment(self):
        t = ResultTable("demo", ["name", "value"])
        t.add_row(["alpha", 1.5])
        t.add_row(["beta-longer", 22])
        text = t.render_text()
        lines = text.split("\n")
        assert lines[0] == "== demo =="
        assert "alpha" in text and "beta-longer" in text
        # Header separator present.
        assert set(lines[2]) <= {"-", "+"}

    def test_render_csv(self):
        t = ResultTable("demo", ["a", "b"])
        t.add_row(["x,y", 2])
        csv = t.render_csv()
        assert csv.splitlines()[0] == "a,b"
        assert "x;y" in csv  # comma escaped

    def test_float_formatting(self):
        t = ResultTable("demo", ["v"])
        t.add_row([1234567.0])
        t.add_row([0.000012])
        t.add_row([0.0])
        col = t.column("v")
        assert "e" in col[0] or "E" in col[0]
        assert col[2] == "0"

    def test_column_lookup(self):
        t = ResultTable("demo", ["a", "b"])
        t.add_row([1, 2])
        assert t.column("b") == ["2"]
        with pytest.raises(ConfigurationError):
            t.column("missing")

    def test_row_width_validated(self):
        t = ResultTable("demo", ["a", "b"])
        with pytest.raises(ConfigurationError):
            t.add_row([1])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ConfigurationError):
            ResultTable("demo", ["a", "a"])

    def test_len(self):
        t = ResultTable("demo", ["a"])
        t.add_row([1])
        assert len(t) == 1


class TestSeries:
    def test_decimate_short_series_untouched(self):
        t = np.arange(10.0)
        v = t * 2
        dt, dv = decimate(t, v, max_points=100)
        assert np.array_equal(dt, t)

    def test_decimate_caps_length(self):
        t = np.linspace(0, 1, 10_000)
        dt, dv = decimate(t, t, max_points=256)
        assert len(dt) == 256
        assert dt[0] == 0 and dt[-1] == 1

    def test_decimate_validates(self):
        with pytest.raises(ConfigurationError):
            decimate(np.arange(5.0), np.arange(4.0))

    def test_rolling_mean_basic(self):
        out = rolling_mean(np.array([1.0, 2.0, 3.0, 4.0]), window=2)
        assert out[0] == 1.0
        assert out[1] == pytest.approx(1.5)
        assert out[3] == pytest.approx(3.5)

    def test_rolling_mean_window_one_identity(self):
        v = np.array([3.0, 1.0, 4.0])
        assert np.array_equal(rolling_mean(v, 1), v)

    def test_ascii_chart_renders(self):
        x = np.linspace(0, 100, 50)
        chart = ascii_chart(
            [("reno", x, x * 1e7), ("htcp", x, x * 3e7)],
            title="throughput vs rtt", logy=False,
            xlabel="rtt", ylabel="bps",
        )
        assert "throughput vs rtt" in chart
        assert "legend: *=reno  o=htcp" in chart
        assert "rtt" in chart

    def test_ascii_chart_logy(self):
        x = np.array([1.0, 2.0, 3.0])
        chart = ascii_chart([("s", x, np.array([1e3, 1e6, 1e9]))], logy=True)
        assert "*" in chart

    def test_ascii_chart_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_chart([])


class TestExperimentRecords:
    def test_checks_evaluate(self):
        record = ExperimentRecord("Fig X", "claim", "measured")
        record.add_check("two is greater than one", lambda: 2 > 1)
        record.add_check("impossible", lambda: False)
        assert record.evaluate() is False
        assert [c.passed for c in record.checks] == [True, False]

    def test_markdown_rendering(self):
        record = ExperimentRecord("§6.3 NOAA", "200x", "195x",
                                  notes="storage-capped")
        record.add_check("speedup > 100x", lambda: True)
        record.evaluate()
        md = record.render_markdown()
        assert "### §6.3 NOAA" in md
        assert "[PASS]" in md
        assert "storage-capped" in md

    def test_text_rendering_not_run(self):
        record = ExperimentRecord("id", "a", "b")
        record.add_check("later", lambda: True)
        assert "not-run" in record.render_text()

    def test_report_aggregates(self):
        report = ExperimentReport("all experiments")
        r1 = report.add(ExperimentRecord("one", "x", "y"))
        r1.add_check("ok", lambda: True)
        r2 = report.add(ExperimentRecord("two", "x", "y"))
        r2.add_check("bad", lambda: False)
        assert report.evaluate() is False
        assert len(report.failures()) == 1
        assert "## all experiments" in report.render_markdown()

    def test_report_needs_title(self):
        with pytest.raises(ConfigurationError):
            ExperimentReport("")

"""Tests for the measurement archive, OWAMP, and BWCTL."""

import pytest

from repro.errors import MeasurementError
from repro.perfsonar import (
    BwctlTest,
    Measurement,
    MeasurementArchive,
    Metric,
    OwampProbe,
)
from repro.perfsonar.archive import SeriesStats
from repro.units import ms, seconds


class TestArchive:
    def test_record_and_series(self):
        arch = MeasurementArchive()
        for t in range(5):
            arch.record_value(float(t), "a", "b", Metric.LOSS_RATE, t * 0.01)
        times, values = arch.series("a", "b", Metric.LOSS_RATE)
        assert list(times) == [0, 1, 2, 3, 4]
        assert values[-1] == pytest.approx(0.04)

    def test_windowed_series(self):
        arch = MeasurementArchive()
        for t in range(10):
            arch.record_value(float(t), "a", "b", Metric.THROUGHPUT_BPS, 1e9)
        times, _ = arch.series("a", "b", Metric.THROUGHPUT_BPS,
                               since=3.0, until=6.0)
        assert list(times) == [3, 4, 5, 6]

    def test_latest(self):
        arch = MeasurementArchive()
        arch.record_value(1.0, "a", "b", Metric.RTT_S, 0.05)
        arch.record_value(2.0, "a", "b", Metric.RTT_S, 0.06)
        latest = arch.latest("a", "b", Metric.RTT_S)
        assert latest.time == 2.0 and latest.value == 0.06
        assert arch.latest("x", "y", Metric.RTT_S) is None

    def test_out_of_order_rejected(self):
        arch = MeasurementArchive()
        arch.record_value(2.0, "a", "b", Metric.LOSS_RATE, 0.0)
        with pytest.raises(MeasurementError):
            arch.record_value(1.0, "a", "b", Metric.LOSS_RATE, 0.0)

    def test_independent_keys(self):
        arch = MeasurementArchive()
        arch.record_value(5.0, "a", "b", Metric.LOSS_RATE, 0.0)
        arch.record_value(1.0, "b", "a", Metric.LOSS_RATE, 0.0)  # ok: other key
        assert arch.count() == 2
        assert set(arch.pairs(Metric.LOSS_RATE)) == {("a", "b"), ("b", "a")}

    def test_stats(self):
        arch = MeasurementArchive()
        for t, v in enumerate([1.0, 2.0, 3.0]):
            arch.record_value(float(t), "a", "b", Metric.THROUGHPUT_BPS, v)
        stats = arch.stats("a", "b", Metric.THROUGHPUT_BPS)
        assert stats.mean == pytest.approx(2.0)
        assert stats.latest == 3.0
        assert arch.stats("no", "data", Metric.THROUGHPUT_BPS) is None

    def test_series_stats_empty_rejected(self):
        with pytest.raises(MeasurementError):
            SeriesStats.from_values([])

    def test_measurement_validation(self):
        with pytest.raises(MeasurementError):
            Measurement(0.0, "a", "b", "loss", 0.0)  # not a Metric
        with pytest.raises(MeasurementError):
            Measurement(0.0, "a", "b", Metric.LOSS_RATE, -1.0)

    def test_clear(self):
        arch = MeasurementArchive()
        arch.record_value(0.0, "a", "b", Metric.LOSS_RATE, 0.0)
        arch.clear()
        assert arch.count() == 0


class TestOwamp:
    def test_clean_path_zero_loss(self, clean_path_topology, rng):
        probe = OwampProbe(clean_path_topology, "a", "b")
        result = probe.run(rng)
        assert result.packets_lost == 0
        assert result.loss_rate == 0.0
        assert result.one_way_latency.ms == pytest.approx(25, rel=0.05)

    def test_lossy_path_detected(self, clean_path_topology, rng):
        clean_path_topology.link_between("a", "b").degrade(
            loss_probability=0.01)
        probe = OwampProbe(clean_path_topology, "a", "b",
                           packets_per_session=10_000)
        result = probe.run(rng)
        assert result.loss_rate == pytest.approx(0.01, rel=0.5)

    def test_sees_current_network_state(self, clean_path_topology, rng):
        # The probe profiles at run time, so a fault injected between
        # sessions shows up.
        probe = OwampProbe(clean_path_topology, "a", "b",
                           packets_per_session=50_000)
        before = probe.run(rng)
        clean_path_topology.link_between("a", "b").degrade(
            loss_probability=1 / 22000)
        after = probe.run(rng)
        assert before.packets_lost == 0
        assert after.packets_lost > 0

    def test_validation(self, clean_path_topology):
        with pytest.raises(MeasurementError):
            OwampProbe(clean_path_topology, "a", "b", packets_per_session=0)

    def test_summary(self, clean_path_topology, rng):
        text = OwampProbe(clean_path_topology, "a", "b").run(rng).summary()
        assert "owamp a -> b" in text


class TestBwctl:
    def test_clean_path_reaches_window_limit(self, clean_path_topology, rng):
        test = BwctlTest(clean_path_topology, "a", "b",
                         duration=seconds(10), algorithm="htcp")
        result = test.run(rng)
        # Default (untuned) window 16 MiB at 50 ms RTT -> ~2.7 Gbps cap.
        assert 1.5 < result.throughput.gbps < 3.0

    def test_loss_cuts_throughput(self, clean_path_topology, rng):
        baseline = BwctlTest(clean_path_topology, "a", "b").run(rng)
        clean_path_topology.link_between("a", "b").degrade(
            loss_probability=1 / 22000)
        degraded = BwctlTest(clean_path_topology, "a", "b").run(rng)
        # H-TCP recovers quickly, so a short test shows a clear but not
        # catastrophic drop; the catastrophic case is covered by the
        # Reno/long-RTT tests in test_tcp_connection.
        assert degraded.throughput.bps < 0.8 * baseline.throughput.bps
        assert degraded.loss_events > 0

    def test_algorithm_selection(self, clean_path_topology, rng):
        result = BwctlTest(clean_path_topology, "a", "b",
                           algorithm="reno").run(rng)
        assert result.algorithm == "reno"

    def test_bad_algorithm_rejected(self, clean_path_topology):
        from repro.errors import ConfigurationError
        with pytest.raises((MeasurementError, ConfigurationError)):
            BwctlTest(clean_path_topology, "a", "b", algorithm="warpspeed")

    def test_duration_validated(self, clean_path_topology):
        with pytest.raises(MeasurementError):
            BwctlTest(clean_path_topology, "a", "b", duration=seconds(0))

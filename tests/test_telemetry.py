"""Tests for the repro.telemetry subsystem."""

import json

import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    NULL_TRACER,
    FlightRecorder,
    NullTracer,
    Tracer,
    ensure_tracer,
    event_to_dict,
    render_timeline,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)


class TestTracer:
    def test_events_get_increasing_seq(self):
        tracer = Tracer()
        a = tracer.event("demo", "one")
        b = tracer.event("demo", "two")
        assert b.seq == a.seq + 1

    def test_explicit_time_wins_over_clock(self):
        tracer = Tracer(clock=lambda: 5.0)
        assert tracer.event("demo", "x").t == 5.0
        assert tracer.event("demo", "x", t=1.25).t == 1.25

    def test_unbound_clock_stamps_zero(self):
        tracer = Tracer()
        assert tracer.event("demo", "x").t == 0.0

    def test_bind_clock_requires_callable(self):
        with pytest.raises(TelemetryError):
            Tracer().bind_clock(42)

    def test_bad_phase_rejected(self):
        with pytest.raises(TelemetryError):
            Tracer().event("demo", "x", phase="Z")

    def test_span_emits_begin_end_pair(self):
        tracer = Tracer(clock=lambda: 3.0)
        with tracer.span("demo", "work", answer=42):
            tracer.event("demo", "inner")
        phases = [e.phase for e in tracer.events()]
        assert phases == ["B", "I", "E"]
        assert tracer.events()[0].attrs == {"answer": 42}

    def test_span_never_ends_before_it_begins(self):
        tracer = Tracer()  # unbound clock: now() == 0.0
        with tracer.span("demo", "work", t=7.5):
            pass
        begin, end = tracer.events()
        assert begin.t == 7.5
        assert end.t >= begin.t

    def test_span_at_validates_order(self):
        tracer = Tracer()
        tracer.span_at("demo", "job", 1.0, 4.0, slot=0)
        with pytest.raises(TelemetryError):
            tracer.span_at("demo", "job", 4.0, 1.0)

    def test_sample_emits_counter_phase(self):
        tracer = Tracer()
        tracer.sample("cwnd", 17.0, t=2.0, category="tcp")
        (ev,) = tracer.events()
        assert ev.phase == "C"
        assert ev.attrs == {"value": 17.0}

    def test_metrics_shortcuts(self):
        tracer = Tracer()
        tracer.counter("hits", component="c").inc(3)
        tracer.gauge("depth", component="c").set(9)
        tracer.histogram("lat", component="c").observe(0.5)
        summary = tracer.metrics.as_dict()
        assert summary["c/hits"]["value"] == 3
        assert summary["c/depth"]["value"] == 9
        assert summary["c/lat"]["count"] == 1

    def test_metric_kind_conflict_rejected(self):
        tracer = Tracer()
        tracer.counter("x")
        with pytest.raises(TelemetryError):
            tracer.gauge("x")

    def test_empty_tracer_is_still_truthy(self):
        # len() == 0 must not make a tracer falsy, or `tracer or
        # NULL_TRACER` fallbacks would silently discard it.
        tracer = Tracer()
        assert len(tracer) == 0 and bool(tracer)

    def test_wall_clock_is_opt_in(self):
        assert Tracer().event("d", "x").wall is None
        ticks = iter([10.0, 20.0])
        traced = Tracer(wall_clock=lambda: next(ticks))
        assert traced.event("d", "x").wall == 10.0


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.event("d", "x") is None
        with NULL_TRACER.span("d", "x"):
            pass
        NULL_TRACER.sample("v", 1.0)
        NULL_TRACER.span_at("d", "x", 0.0, 1.0)
        NULL_TRACER.counter("c").inc()
        NULL_TRACER.gauge("g").set(1)
        NULL_TRACER.histogram("h").observe(1)
        assert len(NULL_TRACER) == 0
        assert len(NULL_TRACER.metrics) == 0

    def test_ensure_tracer_mapping(self):
        assert ensure_tracer(None) is NULL_TRACER
        assert ensure_tracer(False) is NULL_TRACER
        fresh = ensure_tracer(True)
        assert isinstance(fresh, Tracer) and fresh.enabled
        existing = Tracer()
        assert ensure_tracer(existing) is existing
        assert isinstance(ensure_tracer(NullTracer()), NullTracer)
        with pytest.raises(TelemetryError):
            ensure_tracer("yes")


class TestFlightRecorder:
    def test_ring_drops_oldest(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            tracer.event("demo", f"e{i}")
        names = [e.name for e in tracer.events()]
        assert names == ["e2", "e3", "e4"]
        assert tracer.recorder.dropped == 2

    def test_tail(self):
        rec = FlightRecorder(capacity=None)
        tracer = Tracer()
        for i in range(10):
            rec.append(tracer.event("demo", f"e{i}"))
        assert [e.name for e in rec.tail(3)] == ["e7", "e8", "e9"]

    def test_render_tail_mentions_omitted(self):
        tracer = Tracer()
        for i in range(10):
            tracer.event("demo", f"e{i}")
        text = tracer.recorder.render_tail(4)
        assert "last 4 of 10" in text
        assert "6 earlier omitted" in text
        assert "e9" in text and "e5" not in text

    def test_invalid_capacity(self):
        with pytest.raises(TelemetryError):
            FlightRecorder(capacity=-1)


class TestExporters:
    def _tracer(self):
        tracer = Tracer()
        tracer.event("alpha", "hello", t=1.0, n=1)
        with tracer.span("beta", "work", t=2.0):
            tracer.sample("depth", 3.0, t=2.5, category="beta")
        return tracer

    def test_jsonl_is_one_json_object_per_line(self):
        lines = to_jsonl(self._tracer().events()).splitlines()
        assert len(lines) == 4
        first = json.loads(lines[0])
        assert first["cat"] == "alpha" and first["name"] == "hello"
        assert first["args"] == {"n": 1}
        assert "wall" not in first  # determinism: no wall stamp by default

    def test_event_to_dict_coerces_exotic_values(self):
        tracer = Tracer()
        ev = tracer.event("d", "x", obj=object())
        assert isinstance(event_to_dict(ev)["args"]["obj"], str)

    def test_write_jsonl_roundtrip(self, tmp_path):
        path = write_jsonl(self._tracer().events(),
                           tmp_path / "sub" / "log.jsonl")
        assert path.exists()
        rows = [json.loads(line) for line in
                path.read_text().splitlines()]
        assert [r["ph"] for r in rows] == ["I", "B", "C", "E"]

    def test_chrome_trace_shape(self):
        tracer = self._tracer()
        doc = to_chrome_trace(tracer.events(), metrics=tracer.metrics)
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        # Metadata rows name one lane per category.
        lanes = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert lanes == {"alpha", "beta"}
        spans = [e for e in events if e["ph"] in ("B", "E")]
        assert spans[0]["ts"] == pytest.approx(2.0 * 1e6)
        counters = [e for e in events if e["ph"] == "C"]
        assert counters[0]["args"] == {"depth": 3.0}

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        tracer = self._tracer()
        path = write_chrome_trace(tracer.events(), tmp_path / "t.json",
                                  metrics=tracer.metrics)
        doc = json.loads(path.read_text())
        assert "traceEvents" in doc

    def test_render_timeline_indents_spans(self):
        text = render_timeline(self._tracer().events())
        lines = text.splitlines()
        assert any("beta/work" in line for line in lines)
        inner = next(line for line in lines if "depth" in line)
        assert inner.startswith("  ")  # inside the span


class TestDeterminism:
    def _run(self, seed):
        """A small traced scenario; returns its JSONL log."""
        from repro.core import simple_science_dmz
        from repro.devices.faults import FailingLineCard
        from repro.scenario import Scenario
        from repro.units import minutes

        scenario = (Scenario(simple_science_dmz(), seed=seed)
                    .with_mesh(["dmz-perfsonar", "remote-dtn"])
                    .inject("border", FailingLineCard(), at=minutes(10)))
        outcome = scenario.run(until=minutes(30), trace=True)
        assert outcome.trace is not None
        return to_jsonl(outcome.trace.events())

    def test_same_seed_identical_event_log(self):
        assert self._run(seed=7) == self._run(seed=7)

    def test_different_seed_differs(self):
        assert self._run(seed=7) != self._run(seed=8)


class TestEngineIntegration:
    def test_dispatch_spans_and_counters(self):
        from repro.netsim.engine import Simulator

        tracer = Tracer()
        sim = Simulator(seed=0, tracer=tracer)
        sim.schedule(1.0, lambda: None)
        sim.rng("loss")
        sim.run()
        names = {(e.category, e.name) for e in tracer.events()}
        assert ("engine", "attached") in names
        assert ("engine", "dispatch") in names
        assert ("engine", "rng-stream") in names
        metrics = tracer.metrics.as_dict()
        assert metrics["engine/events.dispatched"]["value"] == 1
        assert metrics["engine/rng.loss.acquisitions"]["value"] == 1

    def test_failure_attaches_flight_recorder_tail(self):
        from repro.errors import SimulationError
        from repro.netsim.engine import Simulator

        def boom():
            raise SimulationError("deliberate")

        sim = Simulator(tracer=Tracer())
        sim.schedule(1.0, boom)
        with pytest.raises(SimulationError) as excinfo:
            sim.run()
        assert hasattr(excinfo.value, "trace_tail")
        assert "flight recorder" in excinfo.value.trace_tail

"""Tests for the firewall and ACL models (§5, §6.2)."""

import pytest

from repro.devices.acl import AccessControlList, AclAction, AclEngine, AclRule
from repro.devices.firewall import Firewall, FirewallPolicy, FirewallRule
from repro.errors import ConfigurationError, SecurityPolicyError
from repro.netsim import Link, Topology
from repro.netsim.node import FlowContext, Router
from repro.tcp import TcpConnection
from repro.units import GB, Gbps, KB, MB, Mbps, bytes_, ms, us


class TestFirewallCapacity:
    def test_aggregate_matches_marketing(self):
        fw = Firewall(name="fw", processors=16, processor_rate=Mbps(650))
        assert fw.aggregate_capacity.gbps == pytest.approx(10.4)

    def test_single_flow_pinned_to_one_processor(self):
        fw = Firewall(name="fw", processors=16, processor_rate=Mbps(650))
        assert fw.per_flow_capacity.mbps == pytest.approx(650)
        assert fw.element_capacity().mbps == pytest.approx(650)

    def test_input_buffer_advertised(self):
        fw = Firewall(name="fw", input_buffer=KB(512))
        assert fw.element_buffer().bits == KB(512).bits

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Firewall(name="fw", processors=0)


class TestSequenceChecking:
    def test_strips_window_scaling(self):
        fw = Firewall(name="fw", sequence_checking=True)
        ctx = FlowContext(mss=bytes_(1460), max_receive_window=MB(16))
        out = fw.transform_flow(ctx)
        assert out.window_scaling is False
        assert out.effective_receive_window().bits == KB(64).bits

    def test_disabled_leaves_flow_alone(self):
        fw = Firewall(name="fw", sequence_checking=False)
        ctx = FlowContext(mss=bytes_(1460))
        assert fw.transform_flow(ctx) is ctx


class TestFirewallBurstLoss:
    def test_burst_within_buffer_no_loss(self):
        fw = Firewall(name="fw", input_buffer=KB(512),
                      expected_burst=KB(128))
        assert fw.element_loss_probability() == 0.0

    def test_big_burst_loses(self):
        fw = Firewall(name="fw", input_buffer=KB(512),
                      expected_burst=MB(8), expected_line_rate=Gbps(10))
        assert fw.element_loss_probability() > 0

    def test_burst_loss_for_custom_profile(self):
        fw = Firewall(name="fw", input_buffer=KB(256))
        small = fw.burst_loss_for(KB(64), Gbps(10))
        big = fw.burst_loss_for(MB(16), Gbps(10))
        assert small == 0.0
        assert big > 0.5


class TestFirewallPolicy:
    def test_first_match_wins(self):
        policy = FirewallPolicy(default_action="deny")
        policy.deny(src="evil")
        policy.allow(src="*", dst="dtn", port=50000)
        assert not policy.permits("evil", "dtn", 50000)
        assert policy.permits("good", "dtn", 50000)
        assert not policy.permits("good", "dtn", 22)

    def test_check_raises(self):
        fw = Firewall(name="fw")
        with pytest.raises(SecurityPolicyError):
            fw.check("a", "b", 80)

    def test_rule_validation(self):
        with pytest.raises(ConfigurationError):
            FirewallRule(action="maybe")
        with pytest.raises(ConfigurationError):
            FirewallRule(action="allow", port="eighty")

    def test_describe(self):
        text = Firewall(name="fw", sequence_checking=True).describe()
        assert "sequence checking on" in text


class TestPennStateScenario:
    """The §6.2 pathology end-to-end: seq checking -> 64 KB -> ~50 Mbps."""

    def build(self, seq_checking):
        topo = Topology("psu")
        topo.add_host("vtti", nic_rate=Gbps(1))
        topo.add_host("coe", nic_rate=Gbps(1))
        fw = topo.add_node(Firewall(name="coe-fw",
                                    processor_rate=Gbps(1),
                                    input_buffer=MB(4),
                                    sequence_checking=seq_checking))
        fw.policy.allow()
        topo.connect("vtti", "coe-fw", Link(rate=Gbps(1), delay=ms(5)))
        topo.connect("coe-fw", "coe", Link(rate=Gbps(1), delay=us(50)))
        return topo

    def test_window_clamped_path_is_slow(self):
        topo = self.build(seq_checking=True)
        profile = topo.profile_between("vtti", "coe")
        result = TcpConnection(profile).transfer(GB(1))
        assert 40 < result.mean_throughput.mbps < 70  # "around 50Mbps"

    def test_fix_recovers_hundreds_of_mbps(self):
        slow = TcpConnection(
            self.build(True).profile_between("vtti", "coe")).transfer(GB(1))
        fast = TcpConnection(
            self.build(False).profile_between("vtti", "coe")).transfer(GB(1))
        speedup = fast.mean_throughput.bps / slow.mean_throughput.bps
        assert speedup > 4  # paper: ~5x inbound, ~12x outbound


class TestAcl:
    def test_permit_deny_ordering(self):
        acl = AccessControlList(name="t")
        acl.deny(src="bad")
        acl.permit(dst="dtn", port=50000)
        assert acl.evaluate("bad", "dtn", "tcp", 50000) is AclAction.DENY
        assert acl.evaluate("ok", "dtn", "tcp", 50000) is AclAction.PERMIT
        assert acl.evaluate("ok", "dtn", "tcp", 22) is AclAction.DENY

    def test_default_action(self):
        acl = AccessControlList(name="t", default_action=AclAction.PERMIT)
        assert acl.permits("x", "y")

    def test_protocol_matching(self):
        acl = AccessControlList(name="t")
        acl.permit(protocol="udp", port=861)
        assert acl.permits("a", "b", "udp", 861)
        assert not acl.permits("a", "b", "tcp", 861)

    def test_rule_validation(self):
        with pytest.raises(ConfigurationError):
            AclRule(action="permit")  # must be AclAction
        with pytest.raises(ConfigurationError):
            AclRule(action=AclAction.PERMIT, protocol="icmpish")

    def test_engine_is_neutral_path_element(self):
        engine = AclEngine(acl=AccessControlList(name="t"))
        assert engine.element_capacity() is None
        assert engine.element_loss_probability() == 0.0
        assert engine.element_latency().us == pytest.approx(1)
        ctx = FlowContext(mss=bytes_(1460))
        assert engine.transform_flow(ctx) is ctx

    def test_engine_check_raises(self):
        engine = AclEngine(acl=AccessControlList(name="t"))
        with pytest.raises(SecurityPolicyError):
            engine.check("a", "b", "tcp", 80)

    def test_acl_vs_firewall_throughput(self):
        """§5's punchline: same policy, ACL costs nothing, firewall costs
        nearly everything."""
        def build(security):
            topo = Topology("sec")
            topo.add_host("remote", nic_rate=Gbps(10))
            topo.add_host("dtn", nic_rate=Gbps(10))
            mid = topo.add_node(Router(name="mid"))
            if security == "acl":
                acl = AccessControlList(name="a")
                acl.permit(dst="dtn")
                mid.attach(AclEngine(acl=acl))
            topo.connect("remote", "mid", Link(rate=Gbps(10), delay=ms(20),
                                               mtu=bytes_(9000)))
            if security == "firewall":
                fw = topo.add_node(Firewall(name="fw"))
                fw.policy.allow(dst="dtn")
                topo.connect("mid", "fw", Link(rate=Gbps(10), delay=us(10),
                                               mtu=bytes_(9000)))
                topo.connect("fw", "dtn", Link(rate=Gbps(10), delay=us(10),
                                               mtu=bytes_(9000)))
            else:
                topo.connect("mid", "dtn", Link(rate=Gbps(10), delay=us(10),
                                                mtu=bytes_(9000)))
            return topo.profile_between("remote", "dtn")

        from dataclasses import replace
        acl_prof = build("acl")
        acl_prof = replace(acl_prof,
                           flow=acl_prof.flow.with_(max_receive_window=MB(256)))
        fw_prof = build("firewall")
        fw_prof = replace(fw_prof,
                          flow=fw_prof.flow.with_(max_receive_window=MB(256)))
        acl_rate = TcpConnection(acl_prof).transfer(GB(10)).mean_throughput
        fw_rate = TcpConnection(fw_prof).transfer(GB(10)).mean_throughput
        assert acl_rate.bps > 5 * fw_rate.bps

"""Client ↔ server integration over real HTTP.

One in-process asyncio server (own event-loop thread) serves a
threaded client, exactly the deployment shape minus the network.  The
centerpiece: every committed spec under ``specs/`` is submitted
through the service and must come back with the *same* manifest digest
an offline ``run_experiment`` produces — the service multiplexes, it
never changes results.
"""

from __future__ import annotations

import asyncio
import json
import pathlib
import threading

import pytest

from repro.errors import (AdmissionError, ConfigurationError,
                          DrainingError, ServeError)
from repro.experiment import ExperimentSpec, RunContext, run_experiment
from repro.serve import ExperimentServer, ExperimentService, ServiceClient

SPECS_DIR = pathlib.Path(__file__).parent.parent / "specs"


def committed_specs():
    """Every real spec file committed under specs/ (sidecars like
    golden.json carry no "kind")."""
    out = []
    for path in sorted(SPECS_DIR.glob("*.json")):
        data = json.loads(path.read_text())
        if isinstance(data, dict) and "kind" in data:
            out.append(path)
    return out


class ServerFixture:
    """An ExperimentServer on its own event-loop thread."""

    def __init__(self, service: ExperimentService) -> None:
        self.service = service
        self.server = ExperimentServer(service, port=0)
        self.loop = asyncio.new_event_loop()
        started = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.server.start())
            started.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        assert started.wait(10), "server failed to start"

    def client(self, **kwargs) -> ServiceClient:
        return ServiceClient(self.server.address, **kwargs)

    def stop(self) -> None:
        self.service.drain(timeout=30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.loop.close()


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("serve-http")
    fixture = ServerFixture(
        ExperimentService(workers=2, cache=tmp / "cache"))
    yield fixture
    fixture.stop()


@pytest.fixture(scope="module")
def offline_manifests():
    """Offline run_experiment results, computed once per spec."""
    memo = {}

    def get(path: pathlib.Path):
        if path not in memo:
            spec = ExperimentSpec.from_file(path)
            memo[path] = run_experiment(spec, RunContext(),
                                        persist=False).manifest
        return memo[path]

    return get


class TestEndToEnd:
    def test_health(self, server):
        doc = server.client().health()
        assert doc == {"ok": True, "draining": False}

    @pytest.mark.parametrize(
        "spec_path", committed_specs(), ids=lambda p: p.stem)
    def test_every_committed_spec_matches_offline_digests(
            self, server, offline_manifests, spec_path):
        spec_doc = json.loads(spec_path.read_text())
        result = server.client().run(spec_doc, tenant="integration",
                                     timeout=120)
        offline = offline_manifests(spec_path)
        assert result["state"] == "done"
        manifest = result["manifest"]
        assert manifest["digest"] == offline.digest()
        assert manifest["result_digest"] == offline.result_digest
        assert manifest["spec_digest"] == offline.spec_digest
        assert result["payload"] is not None

    def test_resubmitting_every_spec_dedupes(self, server):
        """Ordered after the parametrized pass: every digest is now
        memoized, so resubmission is answered without execution."""
        client = server.client()
        for path in committed_specs():
            job = client.submit(json.loads(path.read_text()),
                                tenant="rerun")
            assert job["state"] == "done", path.name
            assert job["deduped"] == "memo", path.name
        snap = client.metrics()
        assert snap["jobs"]["deduped_memo"] >= len(committed_specs())

    def test_service_digests_match_committed_golden(self, server):
        """The committed golden ledger gates `repro run`; the service
        must satisfy the very same ledger."""
        golden = json.loads((SPECS_DIR / "golden.json").read_text())
        client = server.client()
        by_name = {j["name"]: j for j in client.jobs(tenant="integration")}
        checked = 0
        for name, entry in golden.items():
            job = by_name.get(name)
            if job is None or job["state"] != "done":
                continue
            assert job["manifest"]["spec_digest"] == entry["spec_digest"]
            assert (job["manifest"]["result_digest"]
                    == entry["result_digest"])
            checked += 1
        assert checked > 0

    def test_events_stream_replays_lifecycle(self, server):
        client = server.client()
        spec = json.loads((SPECS_DIR / "fig1_tcp_loss_quick.json")
                          .read_text())
        job = client.submit(spec, tenant="events")
        events = list(client.events(job["id"]))
        kinds = [e["event"] for e in events]
        assert kinds[-1] == "done"
        assert all(e["seq"] == i for i, e in enumerate(events))
        # Cursor resume: asking from the midpoint replays only the tail.
        tail = list(client.events(job["id"], since=len(events) - 1))
        assert [e["event"] for e in tail] == ["done"]

    def test_job_listing_and_payload_flag(self, server):
        client = server.client()
        rows = client.jobs(tenant="integration")
        assert rows and all(r["tenant"] == "integration" for r in rows)
        full = client.job(rows[0]["id"], payload=True)
        assert "payload" in full


class TestProtocolErrors:
    def test_unknown_job_404(self, server):
        with pytest.raises(ServeError, match="job-424242"):
            server.client().job("job-424242")

    def test_bad_spec_400(self, server):
        with pytest.raises(ConfigurationError, match="unknown spec kind"):
            server.client().submit({"schema": 1, "kind": "warp",
                                    "name": "x", "seed": 1})

    def test_bad_priority_400(self, server):
        spec = json.loads((SPECS_DIR / "fig1_tcp_loss_quick.json")
                          .read_text())
        with pytest.raises(ConfigurationError, match="unknown priority"):
            server.client().submit(spec, priority="urgent")

    def test_failed_job_surfaces_as_serve_error(self, server):
        bad = {"schema": 1, "kind": "sweep", "name": "http-bad",
               "seed": 1, "target": "no-such-target",
               "grid": {"rtt_ms": [1.0], "loss": [1e-4],
                        "mss_bytes": [9000]}}
        with pytest.raises(ServeError, match="no-such-target"):
            server.client().run(bad, timeout=60)


class TestBackpressureOverHttp:
    """A dedicated workerless server whose queue can be held full."""

    @pytest.fixture()
    def stalled(self):
        fixture = ServerFixture(
            ExperimentService(workers=0, capacity=1))
        yield fixture
        fixture.loop.call_soon_threadsafe(fixture.loop.stop)
        fixture.thread.join(timeout=10)
        fixture.loop.close()

    def spec(self, name):
        return {"schema": 1, "kind": "sweep", "name": name, "seed": 1,
                "target": "mathis",
                "grid": {"rtt_ms": [1.0], "loss": [1e-4],
                         "mss_bytes": [9000]}}

    def test_full_queue_is_429_with_retry_after(self, stalled):
        client = stalled.client()
        first = client.submit(self.spec("bp-1"))
        assert first["state"] == "queued"
        with pytest.raises(AdmissionError) as exc:
            client.submit(self.spec("bp-2"), retry=False)
        assert exc.value.retry_after_s > 0

    def test_client_retry_succeeds_after_capacity_frees(self, stalled):
        client = stalled.client(max_retries=20)
        client.submit(self.spec("bp-3"))
        freed = threading.Timer(
            0.3, lambda: stalled.service.step(timeout=1))
        freed.start()
        try:
            job = client.submit(self.spec("bp-4"))  # retries until free
            assert job["state"] == "queued"
        finally:
            freed.join()

    def test_draining_server_answers_503(self, stalled):
        stalled.service.drain(timeout=5)
        with pytest.raises(DrainingError):
            stalled.client().submit(self.spec("bp-5"))

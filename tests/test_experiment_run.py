"""Experiment-runner contract: one spec, one digest, any execution mode.

The acceptance property of the experiment layer: running the same spec
with the same seed yields a RunManifest with an *identical digest* —
serial, parallel, cache-cold or cache-warm — and the scenario path now
exercises the ResultCache exactly like sweeps do.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiment import (
    BenchSpec,
    ExperimentSpec,
    FaultSpec,
    MeshSpec,
    RunContext,
    RunManifest,
    ScenarioSpec,
    SweepSpec,
    package_code_version,
    run_experiment,
)
from repro.perfsonar.alerts import AlertRule
from repro.scenario import Scenario
from repro.units import seconds


def scenario_spec(name="t-scn", seed=5, until=1800.0) -> ScenarioSpec:
    return ScenarioSpec(
        name=name, seed=seed, until_s=until,
        mesh=MeshSpec(hosts=("dmz-perfsonar", "remote-dtn")),
        faults=(FaultSpec(kind="linecard", at_s=600.0),),
    )


def sweep_spec(name="t-swp") -> SweepSpec:
    return SweepSpec.from_grid(
        {"rtt_ms": [1, 10, 100], "loss": [4.5455e-5], "mss_bytes": [9000]},
        name=name, target="mathis", value_label="gbps")


class TestManifestIdentity:
    @pytest.mark.parametrize("make_spec", [scenario_spec, sweep_spec])
    def test_digest_identical_serial_parallel_cached(self, tmp_path,
                                                     make_spec):
        spec = make_spec()
        cache_dir = tmp_path / "cache"
        runs = [
            run_experiment(spec, RunContext(), persist=False),
            run_experiment(spec, RunContext(workers=2), persist=False),
            run_experiment(spec, RunContext(cache=cache_dir),
                           persist=False),               # cache-cold
            run_experiment(spec, RunContext(cache=cache_dir),
                           persist=False),               # cache-warm
        ]
        digests = {r.manifest.digest() for r in runs}
        cores = {r.manifest.core_json() for r in runs}
        assert len(digests) == 1
        assert len(cores) == 1  # byte-identical deterministic cores
        # The warm run answered from the cache without re-evaluating.
        warm = runs[-1]
        assert warm.cached
        assert warm.manifest.stats.get("exec.runner.evaluated", 0) == 0

    def test_two_runs_same_seed_byte_identical_manifest(self):
        one = run_experiment(scenario_spec(), RunContext(), persist=False)
        two = run_experiment(scenario_spec(), RunContext(), persist=False)
        assert one.manifest.core_json() == two.manifest.core_json()
        assert one.payload == two.payload

    def test_different_seed_different_result(self):
        base = run_experiment(sweep_spec(), RunContext(), persist=False)
        other_spec = ScenarioSpec(
            name="t-scn", seed=6, until_s=1800.0,
            mesh=MeshSpec(hosts=("dmz-perfsonar", "remote-dtn")),
            faults=(FaultSpec(kind="linecard", at_s=600.0),))
        other = run_experiment(other_spec, RunContext(), persist=False)
        assert base.manifest.digest() != other.manifest.digest()

    def test_manifest_core_fields(self):
        spec = sweep_spec()
        result = run_experiment(spec, RunContext(), persist=False)
        m = result.manifest
        assert m.kind == "sweep" and m.name == spec.name
        assert m.spec_digest == spec.digest()
        assert m.seed == spec.seed
        assert m.code_version == package_code_version()
        assert m.summary["points"] == 3 and m.summary["ok"] == 3
        assert "elapsed_s" in m.timings  # run section, outside the digest


class TestScenarioThroughCache:
    def test_cold_stores_then_warm_hits(self, tmp_path):
        spec = scenario_spec()
        cold = run_experiment(spec, RunContext(cache=tmp_path / "c"),
                              persist=False)
        warm = run_experiment(spec, RunContext(cache=tmp_path / "c"),
                              persist=False)
        assert cold.manifest.stats.get("exec.cache.stores") == 1
        assert not cold.cached
        assert warm.manifest.stats.get("exec.cache.hits") == 1
        assert warm.cached
        assert warm.payload == cold.payload

    def test_from_spec_matches_hand_built_scenario(self):
        spec = scenario_spec()
        outcome_spec = Scenario.from_spec(spec).run(
            until=seconds(spec.until_s))
        from repro.core import simple_science_dmz
        from repro.devices.faults import FailingLineCard
        hand = Scenario(simple_science_dmz(), seed=5,
                        alert_rule=AlertRule(loss_rate_threshold=1e-5))
        hand.with_mesh(["dmz-perfsonar", "remote-dtn"])
        hand.inject("border", FailingLineCard(), at=seconds(600.0))
        outcome_hand = hand.run(until=seconds(1800.0))
        assert outcome_spec.archive.count() == outcome_hand.archive.count()
        assert len(outcome_spec.alerts) == len(outcome_hand.alerts)
        assert outcome_spec.detection_delays == outcome_hand.detection_delays

    def test_from_spec_derives_mesh_hosts(self):
        spec = ScenarioSpec(name="derived", until_s=300.0)
        scenario = Scenario.from_spec(spec)
        outcome = scenario.run(until=seconds(300.0))
        assert outcome.archive.count() > 0

    def test_traced_run_bypasses_cache(self, tmp_path):
        spec = scenario_spec()
        ctx = RunContext(cache=tmp_path / "c", trace=True)
        result = run_experiment(spec, ctx, persist=False)
        assert result.value is not None and result.value.trace is not None
        assert not result.manifest.stats.get("exec.cache.stores")


class TestPersistence:
    def test_artifacts_written_and_hashed(self, tmp_path):
        spec = sweep_spec()
        ctx = RunContext(artifacts=tmp_path / "run")
        result = run_experiment(spec, ctx)
        out = tmp_path / "run"
        assert (out / "spec.json").exists()
        assert (out / "result.json").exists()
        assert (out / "manifest.json").exists()
        from repro.experiment import file_sha256
        m = result.manifest
        assert m.artifacts["spec.json"] == file_sha256(out / "spec.json")
        assert m.artifacts["result.json"] == file_sha256(out / "result.json")
        # Round-trip the written manifest, digest-checked.
        loaded = RunManifest.from_file(out / "manifest.json")
        assert loaded.digest() == m.digest()
        # The committed spec bytes re-parse to the same spec.
        assert ExperimentSpec.from_file(out / "spec.json") == spec

    def test_persist_off_same_digest(self, tmp_path):
        spec = sweep_spec()
        with_files = run_experiment(
            spec, RunContext(artifacts=tmp_path / "a"))
        without = run_experiment(spec, RunContext(), persist=False)
        assert with_files.manifest.digest() == without.manifest.digest()

    def test_tampered_manifest_rejected(self, tmp_path):
        spec = sweep_spec()
        run_experiment(spec, RunContext(artifacts=tmp_path / "a"))
        path = tmp_path / "a" / "manifest.json"
        data = json.loads(path.read_text())
        data["seed"] = 999
        path.write_text(json.dumps(data))
        with pytest.raises(ConfigurationError, match="digest mismatch"):
            RunManifest.from_file(path)

    def test_bench_spec_runs(self, tmp_path):
        spec = BenchSpec(name="t-bench", scenarios=("maxmin.numpy",),
                         repeats=1, quick=True)
        result = run_experiment(spec, RunContext(artifacts=tmp_path / "b"))
        assert result.manifest.summary["scenarios"] == 1
        assert "maxmin.numpy" in result.manifest.timings
        # Timings are provenance, not identity: recorded outside the core
        # but hashed among the run artifacts.
        assert "timings.json" in result.manifest.run_artifacts
        assert (tmp_path / "b" / "timings.json").exists()


class TestContext:
    def test_seed_tree_stable_and_distinct(self):
        ctx = RunContext().bind(7)
        assert ctx.seed() == 7
        assert ctx.seed("a") == RunContext().bind(7).seed("a")
        assert ctx.seed("a") != ctx.seed("b")
        assert ctx.seed("a", 1) != ctx.seed("a", 2)

    def test_unbound_seed_raises(self):
        with pytest.raises(ConfigurationError, match="root seed"):
            RunContext().root_seed

    def test_from_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "envcache"))
        ctx = RunContext.from_env()
        assert ctx.workers == 3
        assert ctx.cache is not None

    def test_seeded_spec_needs_seeded_target(self):
        spec = SweepSpec.from_grid({"rtt_ms": [1], "loss": [1e-5],
                                    "mss_bytes": [9000]},
                                   name="x", target="mathis", seeded=True)
        with pytest.raises(ConfigurationError, match="seed"):
            run_experiment(spec, RunContext(), persist=False)


class TestAlertRuleSentinel:
    def test_scenarios_do_not_share_alert_rule(self):
        """Regression: a default AlertRule constructed in the signature
        was one shared object across every Scenario in the process."""
        from repro.core import simple_science_dmz
        one = Scenario(simple_science_dmz())
        two = Scenario(simple_science_dmz())
        assert one.alert_rule is not two.alert_rule
        assert one.alert_rule.loss_rate_threshold == pytest.approx(1e-5)

    def test_explicit_rule_still_respected(self):
        from repro.core import simple_science_dmz
        rule = AlertRule(loss_rate_threshold=0.25)
        assert Scenario(simple_science_dmz(),
                        alert_rule=rule).alert_rule is rule


class TestCli:
    def run_cli(self, *argv):
        from repro.cli import main
        return main(list(argv))

    def test_run_and_golden_match(self, tmp_path, capsys):
        spec = sweep_spec(name="cli-swp")
        spec_path = spec.save(tmp_path / "s.json")
        result = run_experiment(spec, RunContext(), persist=False)
        golden = {spec.name: {
            "spec_digest": result.manifest.spec_digest,
            "result_digest": result.manifest.result_digest}}
        golden_path = tmp_path / "golden.json"
        golden_path.write_text(json.dumps(golden))
        rc = self.run_cli("run", spec_path, "--golden", str(golden_path),
                          "--artifacts", str(tmp_path / "out"), "--stats")
        assert rc == 0
        out = capsys.readouterr().out
        assert "digests match" in out
        assert (tmp_path / "out" / "manifest.json").exists()

    def test_run_golden_drift_fails(self, tmp_path, capsys):
        spec = sweep_spec(name="cli-drift")
        spec_path = spec.save(tmp_path / "s.json")
        golden_path = tmp_path / "golden.json"
        golden_path.write_text(json.dumps({spec.name: {
            "spec_digest": "bogus", "result_digest": "bogus"}}))
        rc = self.run_cli("run", spec_path, "--golden", str(golden_path),
                          "--no-persist")
        assert rc == 1
        assert "GOLDEN DRIFT" in capsys.readouterr().err

    def test_run_golden_missing_entry_errors(self, tmp_path):
        spec = sweep_spec(name="cli-miss")
        spec_path = spec.save(tmp_path / "s.json")
        golden_path = tmp_path / "golden.json"
        golden_path.write_text("{}")
        assert self.run_cli("run", spec_path, "--golden", str(golden_path),
                            "--no-persist") == 2

    def test_run_unreadable_spec_errors(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        assert self.run_cli("run", str(bad)) == 2

    def test_specs_lists_directory(self, tmp_path, capsys):
        sweep_spec(name="listed").save(tmp_path / "a.json")
        (tmp_path / "golden.json").write_text("{}")  # sidecar: skipped
        assert self.run_cli("specs", "--dir", str(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "listed" in out and "golden" not in out

    def test_specs_flags_malformed_spec(self, tmp_path, capsys):
        (tmp_path / "bad.json").write_text(
            '{"kind": "scenario", "schema": 999, "name": "x"}')
        assert self.run_cli("specs", "--dir", str(tmp_path)) == 1
        assert "UNREADABLE" in capsys.readouterr().out


class TestCommittedSpecs:
    """The specs/ directory this repo ships must stay loadable and
    golden-consistent at the spec-digest level (result digests are
    CI-gated by the golden-replay job, which actually runs them)."""

    def test_committed_specs_parse(self):
        import pathlib
        root = pathlib.Path(__file__).parent.parent / "specs"
        specs = {}
        for path in sorted(root.glob("*.json")):
            if path.name == "golden.json":
                continue
            spec = ExperimentSpec.from_file(path)
            specs[spec.name] = spec
        assert "linecard-softfail" in specs
        assert "fig1-tcp-loss" in specs
        assert "fig1-tcp-loss-quick" in specs

    def test_golden_spec_digests_match_spec_files(self):
        import pathlib
        root = pathlib.Path(__file__).parent.parent / "specs"
        golden = json.loads((root / "golden.json").read_text())
        by_name = {}
        for path in root.glob("*.json"):
            if path.name == "golden.json":
                continue
            spec = ExperimentSpec.from_file(path)
            by_name[spec.name] = spec
        for name, entry in golden.items():
            assert name in by_name, f"golden entry {name!r} has no spec file"
            assert by_name[name].digest() == entry["spec_digest"], (
                f"spec file for {name!r} was edited without regenerating "
                "specs/golden.json")

"""Tests for repro.units: constructors, arithmetic, parsing, invariants."""


import pytest
from hypothesis import given, strategies as st

from repro.errors import UnitError
from repro.units import (
    GB,
    KB,
    MB,
    PB,
    TB,
    DataRate,
    DataSize,
    Gbps,
    GBps,
    Kbps,
    Mbps,
    MBps,
    Tbps,
    TimeDelta,
    bits,
    bytes_,
    days,
    hours,
    minutes,
    ms,
    parse_rate,
    parse_size,
    parse_time,
    seconds,
    us,
)


class TestDataSizeConstruction:
    def test_bits_roundtrip(self):
        assert bits(1000).bits == 1000

    def test_bytes_are_eight_bits(self):
        assert bytes_(1).bits == 8

    def test_kb_is_binary(self):
        # TCP windows: 64 KB means 65536 bytes.
        assert KB(64).bytes == 65536

    def test_mb_is_decimal(self):
        assert MB(1).bytes == 1_000_000

    def test_gb_tb_pb_scale(self):
        assert GB(1).bytes == 1e9
        assert TB(1).bytes == 1e12
        assert PB(1).bytes == 1e15

    def test_negative_rejected(self):
        with pytest.raises(UnitError):
            DataSize(-1)

    def test_nan_rejected(self):
        with pytest.raises(UnitError):
            DataSize(float("nan"))

    def test_bool_rejected(self):
        with pytest.raises(UnitError):
            DataSize(True)

    def test_string_rejected(self):
        with pytest.raises(UnitError):
            DataSize("100")


class TestDataSizeArithmetic:
    def test_add(self):
        assert (MB(1) + MB(2)).megabytes == pytest.approx(3)

    def test_subtract(self):
        assert (MB(3) - MB(1)).megabytes == pytest.approx(2)

    def test_subtract_underflow_raises(self):
        with pytest.raises(UnitError):
            MB(1) - MB(2)

    def test_scale(self):
        assert (MB(2) * 3).megabytes == pytest.approx(6)
        assert (3 * MB(2)).megabytes == pytest.approx(6)

    def test_divide_by_rate_gives_time(self):
        t = GB(1) / Gbps(1)
        assert isinstance(t, TimeDelta)
        assert t.s == pytest.approx(8.0)

    def test_divide_by_time_gives_rate(self):
        r = GB(1) / seconds(8)
        assert isinstance(r, DataRate)
        assert r.gbps == pytest.approx(1.0)

    def test_divide_by_size_gives_ratio(self):
        assert MB(2) / MB(1) == pytest.approx(2.0)

    def test_divide_by_zero_rate_raises(self):
        with pytest.raises(UnitError):
            MB(1) / DataRate(0)

    def test_ordering(self):
        assert KB(64) < MB(1) < GB(1)

    def test_zero_is_falsy(self):
        assert not bits(0)
        assert bits(1)

    def test_human_rendering(self):
        assert MB(1.25).human() == "1.25 MB"
        assert GB(239.5).human() == "239.5 GB"


class TestDataRate:
    def test_constructors(self):
        assert Kbps(1).bps == 1e3
        assert Mbps(1).bps == 1e6
        assert Gbps(1).bps == 1e9
        assert Tbps(1).bps == 1e12

    def test_byte_rates(self):
        assert MBps(1).bps == 8e6
        assert GBps(1).bps == 8e9
        assert MBps(395).MBps == pytest.approx(395)

    def test_bdp_matches_paper_eq2(self):
        # Eq 2: 1 Gbps x 10 ms -> 1.25 MB.
        assert Gbps(1).bdp(ms(10)).megabytes == pytest.approx(1.25)

    def test_bdp_requires_timedelta(self):
        with pytest.raises(UnitError):
            Gbps(1).bdp(0.01)

    def test_rate_times_time_gives_size(self):
        assert (Gbps(1) * seconds(8)).gigabytes == pytest.approx(1.0)
        assert (seconds(8) * Gbps(1)).gigabytes == pytest.approx(1.0)

    def test_rate_division(self):
        assert Gbps(10) / Gbps(2) == pytest.approx(5.0)
        assert (Gbps(10) / 2).gbps == pytest.approx(5.0)

    def test_add_subtract(self):
        assert (Gbps(1) + Gbps(2)).gbps == pytest.approx(3)
        with pytest.raises(UnitError):
            Gbps(1) - Gbps(2)

    def test_negative_rejected(self):
        with pytest.raises(UnitError):
            DataRate(-5)


class TestTimeDelta:
    def test_constructors(self):
        assert ms(10).s == pytest.approx(0.01)
        assert us(5).s == pytest.approx(5e-6)
        assert minutes(2).s == 120
        assert hours(1).s == 3600
        assert days(3).s == 259200

    def test_accessors(self):
        assert seconds(0.25).ms == 250
        assert hours(48).days == 2

    def test_add_subtract(self):
        assert (ms(10) + ms(5)).ms == pytest.approx(15)
        with pytest.raises(UnitError):
            ms(1) - ms(2)

    def test_division(self):
        assert minutes(1) / seconds(30) == pytest.approx(2.0)
        assert (minutes(1) / 2).s == 30

    def test_human(self):
        assert days(3).human() == "3 d"
        assert ms(10).human() == "10 ms"


class TestParsers:
    def test_parse_size_decimal_and_binary(self):
        assert parse_size("239.5GB").gigabytes == pytest.approx(239.5)
        assert parse_size("64 KB").bytes == 65536
        assert parse_size("9000B").bytes == 9000

    def test_parse_size_bits_vs_bytes_case(self):
        assert parse_size("1Mb").bits == 1e6
        assert parse_size("1MB").bits == 8e6

    def test_parse_size_bad(self):
        with pytest.raises(UnitError):
            parse_size("lots")
        with pytest.raises(UnitError):
            parse_size("1 parsec")

    def test_parse_rate(self):
        assert parse_rate("10Gbps").gbps == pytest.approx(10)
        assert parse_rate("395 MBps").MBps == pytest.approx(395)
        assert parse_rate("10gbps").gbps == pytest.approx(10)

    def test_parse_time(self):
        assert parse_time("10ms").s == pytest.approx(0.01)
        assert parse_time("3 days").days == pytest.approx(3)
        with pytest.raises(UnitError):
            parse_time("later")

    def test_parse_non_string(self):
        with pytest.raises(UnitError):
            parse_size(100)


class TestUnitProperties:
    """Hypothesis invariants over the unit algebra."""

    @given(st.floats(min_value=1e-3, max_value=1e15),
           st.floats(min_value=1e-6, max_value=1e5))
    def test_size_rate_time_roundtrip(self, size_bits, rate_bps):
        size = DataSize(size_bits)
        rate = DataRate(rate_bps)
        t = size / rate
        back = rate * t
        assert back.bits == pytest.approx(size.bits, rel=1e-9)

    @given(st.floats(min_value=0, max_value=1e15),
           st.floats(min_value=0, max_value=1e15))
    def test_addition_commutes(self, a, b):
        assert (DataSize(a) + DataSize(b)).bits == (DataSize(b) + DataSize(a)).bits

    @given(st.floats(min_value=1e-3, max_value=1e12),
           st.floats(min_value=1e-6, max_value=1e4))
    def test_bdp_scales_linearly_with_rtt(self, bps, rtt_s):
        rate = DataRate(bps)
        one = rate.bdp(TimeDelta(rtt_s))
        two = rate.bdp(TimeDelta(2 * rtt_s))
        assert two.bits == pytest.approx(2 * one.bits, rel=1e-9)

    @given(st.floats(min_value=0, max_value=1e15))
    def test_ordering_consistent_with_bits(self, v):
        assert not (DataSize(v) < DataSize(v))
        assert DataSize(v) <= DataSize(v)

"""Edge-case and algorithm-specific tests for the fluid TCP model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.netsim import Link, Topology
from repro.tcp import Cubic, HTcp, LossFreeIdeal, Reno, TcpConnection
from repro.tcp.connection import MIN_RTO_SECONDS
from repro.units import GB, Gbps, KB, MB, Mbps, bytes_, ms, seconds


def profile(*, rate=Gbps(10), one_way=ms(25), loss=0.0, window=MB(256),
            mtu=bytes_(9000)):
    topo = Topology("edge")
    topo.add_host("a", nic_rate=rate)
    topo.add_host("b", nic_rate=rate)
    topo.connect("a", "b", Link(rate=rate, delay=one_way, mtu=mtu,
                                loss_probability=loss))
    p = topo.profile_between("a", "b")
    from dataclasses import replace
    return replace(p, flow=p.flow.with_(max_receive_window=window))


class TestCubicConnection:
    def test_cubic_completes_and_fills_clean_path(self):
        result = TcpConnection(profile(), algorithm=Cubic()).transfer(GB(50))
        assert result.algorithm == "cubic"
        assert result.mean_throughput.gbps > 5

    def test_cubic_beats_reno_under_loss_at_high_bdp(self):
        p = profile(loss=1 / 22000, one_way=ms(50))
        reno = TcpConnection(p, algorithm=Reno(),
                             rng=np.random.default_rng(1)).measure(
            seconds(60), max_rounds=100_000)
        cubic = TcpConnection(p, algorithm=Cubic(),
                              rng=np.random.default_rng(1)).measure(
            seconds(60), max_rounds=100_000)
        assert cubic.mean_throughput.bps > reno.mean_throughput.bps

    def test_htcp_vs_cubic_both_reasonable(self):
        p = profile(loss=1e-4)
        rates = {}
        for algo in (HTcp(), Cubic()):
            result = TcpConnection(p, algorithm=algo,
                                   rng=np.random.default_rng(2)).measure(
                seconds(40), max_rounds=100_000)
            rates[algo.name] = result.mean_throughput.bps
        # Both modern algorithms hold within 5x of each other.
        hi, lo = max(rates.values()), min(rates.values())
        assert hi < 5 * lo


class TestIdealAlgorithm:
    def test_ideal_converges_at_least_as_fast(self):
        slow = TcpConnection(profile(), algorithm=Reno()).transfer(GB(5))
        fast = TcpConnection(profile(), algorithm=LossFreeIdeal()).transfer(
            GB(5))
        # Both converge within slow start on a clean path; the ideal must
        # never be meaningfully slower.
        assert fast.duration.s <= slow.duration.s * 1.05
        assert fast.rounds <= slow.rounds


class TestTimeouts:
    def test_rto_floor_respected(self):
        assert MIN_RTO_SECONDS >= 1.0

    def test_timeouts_dominate_on_awful_paths(self):
        p = profile(rate=Mbps(100), one_way=ms(5), loss=0.10, window=MB(1))
        result = TcpConnection(p, rng=np.random.default_rng(3)).transfer(
            MB(2), max_rounds=50_000)
        assert result.timeouts > 0
        # Each timeout costs at least the RTO.
        assert result.duration.s >= result.timeouts * MIN_RTO_SECONDS * 0.9


class TestParameterValidation:
    def test_initial_cwnd_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            TcpConnection(profile(), initial_cwnd=0.5)

    def test_max_rounds_must_be_positive(self):
        conn = TcpConnection(profile())
        with pytest.raises(ConfigurationError):
            conn.transfer(GB(1), max_rounds=0)

    def test_tiny_window_still_progresses(self):
        # Window smaller than one MSS clamps to one segment per RTT.
        p = profile(window=KB(4))
        result = TcpConnection(p).transfer(MB(1))
        assert result.bytes_delivered.bits == pytest.approx(MB(1).bits)
        expected = KB(4).bits / p.base_rtt.s  # at most window/RTT
        assert result.mean_throughput.bps <= expected * 2.5

    def test_catastrophic_loss_is_flagged_not_hidden(self):
        # A near-total-loss path degenerates to timeout-dominated crawl;
        # the result must carry the extrapolation flag and a duration in
        # the right (absurd) ballpark rather than a silent happy number.
        p = profile(loss=0.999999, window=MB(1))
        conn = TcpConnection(p, rng=np.random.default_rng(4))
        result = conn.transfer(GB(1), max_rounds=50)
        assert result.extrapolated
        assert result.timeouts > 10
        assert result.duration.hours > 1


class TestSampling:
    def test_stride_doubling_caps_memory(self):
        p = profile(loss=5e-4, one_way=ms(1))
        result = TcpConnection(p, rng=np.random.default_rng(5)).measure(
            seconds(120), max_rounds=200_000)
        assert len(result.samples) <= 8192
        assert result.rounds > 8192  # decimation actually engaged

    def test_sample_times_monotone(self):
        p = profile(loss=1e-4)
        result = TcpConnection(p, rng=np.random.default_rng(6)).transfer(
            GB(2), max_rounds=40_000)
        t, _, _ = result.sample_arrays()
        assert np.all(np.diff(t) > 0)

"""Tests for the passive SNMP counter models."""

import pytest

from repro.devices.faults import (
    DuplexMismatch,
    FailingLineCard,
    ManagementCpuForwarding,
)
from repro.errors import MeasurementError
from repro.netsim import Link, Simulator, Topology
from repro.netsim.node import Router
from repro.perfsonar import (
    InterfaceCounters,
    MeasurementArchive,
    SnmpPoller,
    read_error_counters,
)
from repro.perfsonar.snmp import UTILIZATION_METRIC
from repro.units import Gbps, Mbps, minutes, ms, seconds


class TestInterfaceCounters:
    def test_accounting_and_poll_delta(self):
        counters = InterfaceCounters(name="uplink")
        counters.account(Mbps(800), seconds(30))
        rate = counters.poll(30.0)
        assert rate.mbps == pytest.approx(800)

    def test_second_poll_uses_delta(self):
        counters = InterfaceCounters(name="uplink")
        counters.account(Mbps(100), seconds(60))
        counters.poll(60.0)
        counters.account(Mbps(500), seconds(60))
        rate = counters.poll(120.0)
        assert rate.mbps == pytest.approx(500)

    def test_idle_interface_polls_zero(self):
        counters = InterfaceCounters(name="idle")
        assert counters.poll(60.0).bps == 0.0

    def test_poll_backwards_rejected(self):
        counters = InterfaceCounters(name="x")
        counters.poll(60.0)
        with pytest.raises(MeasurementError):
            counters.poll(30.0)


class TestErrorCounters:
    def test_clean_node(self):
        node = Router(name="r")
        reading = read_error_counters(node)
        assert reading.looks_clean
        assert reading.hidden_faults == 0

    def test_invisible_fault_keeps_counters_clean(self):
        # The §2 story: the failing line card drops packets but the
        # device reports no errors.
        node = Router(name="r")
        node.attach(FailingLineCard())
        reading = read_error_counters(node)
        assert reading.looks_clean
        assert reading.hidden_faults == 1

    def test_visible_fault_shows(self):
        node = Router(name="r")
        node.attach(DuplexMismatch())
        reading = read_error_counters(node)
        assert not reading.looks_clean
        assert reading.visible_errors == 1
        assert any("duplex" in d for d in reading.details)

    def test_mixed_faults(self):
        node = Router(name="r")
        node.attach(FailingLineCard())
        node.attach(DuplexMismatch())
        node.attach(ManagementCpuForwarding())  # invisible, lossless
        reading = read_error_counters(node)
        assert reading.visible_errors == 1
        assert reading.hidden_faults == 2


class TestSnmpPoller:
    def test_periodic_polling_into_archive(self):
        topo = Topology("snmp")
        topo.add_host("a", nic_rate=Gbps(10))
        topo.add_host("b", nic_rate=Gbps(10))
        link = topo.connect("a", "b", Link(rate=Gbps(10), delay=ms(1),
                                           name="uplink"))
        sim = Simulator(seed=0)
        archive = MeasurementArchive()
        poller = SnmpPoller(topo, sim, archive, interval=minutes(1))
        counters = poller.counters_for(link)
        poller.start()
        # Simulated traffic: account as the experiment runs.
        sim.schedule(30.0, lambda: counters.account(Gbps(2), seconds(60)))
        sim.run_until(minutes(3).s)
        times, values = archive.series("uplink", "snmp", UTILIZATION_METRIC)
        assert len(times) == 3
        assert values.max() > 0

    def test_error_sweep(self):
        topo = Topology("snmp2")
        core = topo.add_node(Router(name="core"))
        core.attach(FailingLineCard())
        sim = Simulator(seed=0)
        poller = SnmpPoller(topo, sim, MeasurementArchive())
        readings = {r.node: r for r in poller.error_sweep()}
        assert readings["core"].looks_clean          # the paper's point
        assert readings["core"].hidden_faults == 1

    def test_double_start_rejected(self):
        topo = Topology("snmp3")
        sim = Simulator(seed=0)
        poller = SnmpPoller(topo, sim, MeasurementArchive())
        poller.start()
        with pytest.raises(MeasurementError):
            poller.start()

    def test_bad_interval(self):
        topo = Topology("snmp4")
        with pytest.raises(MeasurementError):
            SnmpPoller(topo, Simulator(seed=0), MeasurementArchive(),
                       interval=seconds(0))

"""Graceful drain: SIGTERM against a real ``repro serve`` process.

The contract under test is the deployment story: a SIGTERM'd server
stops admitting, lets the in-flight job finish, persists the queued
backlog to ``state_dir/queue.json``, prints ``drained`` and exits 0 —
and a successor service started on the same state directory picks the
backlog up and completes it.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.serve import ExperimentService, ServiceClient
from repro.serve.scheduler import JOBS_STATE_FILE, QUEUE_STATE_FILE

REPO = pathlib.Path(__file__).parent.parent


def slow_spec():
    """~2s of real simulation: enough to be mid-flight at SIGTERM."""
    return {
        "schema": 1, "kind": "sweep", "name": "drain-slow", "seed": 5,
        "target": "fig1_tcp", "value_label": "bps",
        "grid": [["algorithm", ["reno"]],
                 ["rtt_ms", [1, 2, 5]],
                 ["loss", [4.5e-5]],
                 ["rep", [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]],
                 ["max_rounds", [2000000]]],
    }


def quick_spec(name):
    return {
        "schema": 1, "kind": "sweep", "name": name, "seed": 2,
        "target": "mathis", "value_label": "gbps",
        "grid": {"rtt_ms": [1.0, 10.0], "loss": [1e-4],
                 "mss_bytes": [9000]},
    }


def test_sigterm_finishes_in_flight_persists_backlog_and_recovers(
        tmp_path):
    state = tmp_path / "state"
    env = dict(os.environ,
               PYTHONPATH=str(REPO / "src"),
               REPRO_WORKERS="")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--workers", "1", "--state-dir", str(state),
         "--cache-dir", str(tmp_path / "cache")],
        env=env, cwd=str(REPO), stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True)
    try:
        banner = proc.stdout.readline()
        match = re.search(r"serving on (http://[\d.]+:\d+)", banner)
        assert match, f"unexpected server banner: {banner!r}"
        client = ServiceClient(match.group(1))

        slow = client.submit(slow_spec(), tenant="alice")
        queued = [client.submit(quick_spec("drain-q1"), tenant="bob"),
                  client.submit(quick_spec("drain-q2"), tenant="carol")]

        deadline = time.monotonic() + 30
        while client.job(slow["id"])["state"] != "running":
            assert time.monotonic() < deadline, "slow job never started"
            time.sleep(0.05)

        proc.send_signal(signal.SIGTERM)
        output, _ = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=10)

    assert proc.returncode == 0
    assert "draining" in output
    assert "drained (persisted=2 in_flight=1)" in output

    saved = json.loads((state / QUEUE_STATE_FILE).read_text())
    assert sorted(e["spec"]["name"] for e in saved["jobs"]) == [
        "drain-q1", "drain-q2"]
    jobs_index = json.loads((state / JOBS_STATE_FILE).read_text())
    by_name = {j["name"]: j for j in jobs_index["jobs"]}
    assert by_name["drain-slow"]["state"] == "done"
    assert by_name["drain-slow"]["manifest"]["result_digest"]
    assert by_name["drain-q1"]["state"] == "persisted"

    # A successor service on the same state dir finishes the backlog.
    successor = ExperimentService(workers=0, state_dir=state).start()
    restored_ids = {e["id"] for e in saved["jobs"]}
    done = {successor.step().id for _ in range(2)}
    assert done == restored_ids
    assert all(successor.job(i).state == "done" for i in restored_ids)


def test_draining_server_rejects_submissions_in_process(tmp_path):
    """The 503 half of the drain contract, no subprocess needed."""
    svc = ExperimentService(workers=0, state_dir=tmp_path / "s").start()
    svc.submit(quick_spec("last-one"))
    svc.drain(timeout=5)
    from repro.errors import DrainingError
    with pytest.raises(DrainingError):
        svc.submit(quick_spec("too-late"))

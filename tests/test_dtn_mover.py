"""Tests for the managed transfer service (Globus-style task queue)."""

import numpy as np
import pytest

from repro.core import simple_science_dmz
from repro.dtn import (
    Dataset,
    JobState,
    TransferPlan,
    TransferService,
)
from repro.errors import ConfigurationError
from repro.units import GB, seconds


@pytest.fixture
def bundle():
    return simple_science_dmz()


def make_plan(bundle, name="job", size=GB(50)):
    return TransferPlan(bundle.topology, bundle.remote_dtn, "dtn1",
                        Dataset(name, size, 50), "gridftp",
                        policy=bundle.science_policy)


class TestSubmission:
    def test_submit_queues(self, bundle):
        svc = TransferService()
        job = svc.submit(make_plan(bundle))
        assert job.state is JobState.QUEUED
        assert job.job_id == 1
        assert job.report is None

    def test_submit_in_past_rejected(self, bundle):
        svc = TransferService()
        svc.submit(make_plan(bundle))
        svc.run()
        with pytest.raises(ConfigurationError):
            svc.submit(make_plan(bundle), at=seconds(0))

    def test_concurrency_validated(self):
        with pytest.raises(ConfigurationError):
            TransferService(concurrency_per_source=0)


class TestScheduling:
    def test_single_job_succeeds(self, bundle):
        svc = TransferService()
        job = svc.submit(make_plan(bundle))
        svc.run()
        assert job.state is JobState.SUCCEEDED
        assert job.report is not None
        assert job.queue_wait.s == 0
        assert job.total_time.s == pytest.approx(job.report.duration.s)

    def test_concurrency_limit_serializes_excess(self, bundle):
        svc = TransferService(concurrency_per_source=2)
        jobs = [svc.submit(make_plan(bundle, f"j{i}")) for i in range(4)]
        svc.run()
        waits = [j.queue_wait.s for j in jobs]
        # First two start immediately; the next two wait a full job time.
        assert waits[0] == 0 and waits[1] == 0
        assert waits[2] > 0 and waits[3] > 0
        assert waits[2] == pytest.approx(jobs[0].report.duration.s, rel=0.01)

    def test_makespan_reflects_queueing(self, bundle):
        narrow = TransferService(concurrency_per_source=1)
        wide = TransferService(concurrency_per_source=4)
        for svc in (narrow, wide):
            for i in range(4):
                svc.submit(make_plan(bundle, f"j{i}"))
            svc.run()
        assert narrow.makespan().s > 2 * wide.makespan().s
        assert narrow.total_moved().bits == wide.total_moved().bits

    def test_submission_time_offsets(self, bundle):
        svc = TransferService(concurrency_per_source=1)
        early = svc.submit(make_plan(bundle, "early"))
        late = svc.submit(make_plan(bundle, "late"), at=seconds(10_000))
        svc.run()
        assert early.finished_at < late.started_at
        assert late.started_at >= 10_000

    def test_failed_job_recorded(self, bundle):
        # Lossy path with no rng -> TransferError -> FAILED state.
        bundle.topology.link_between("border", "wan").degrade(
            loss_probability=0.001)
        svc = TransferService(rng=None)
        job = svc.submit(make_plan(bundle))
        svc.run()
        assert job.state is JobState.FAILED
        assert "rng" in job.error
        assert svc.failed() == [job]

    def test_lossy_path_with_rng_succeeds(self, bundle):
        bundle.topology.link_between("border", "wan").degrade(
            loss_probability=1e-5)
        svc = TransferService(rng=np.random.default_rng(3))
        job = svc.submit(make_plan(bundle, size=GB(5)))
        svc.run()
        assert job.state is JobState.SUCCEEDED


class TestReporting:
    def test_aggregate_stats(self, bundle):
        svc = TransferService(concurrency_per_source=2)
        for i in range(3):
            svc.submit(make_plan(bundle, f"j{i}", size=GB(20)))
        svc.run()
        assert svc.total_moved().gigabytes == pytest.approx(60)
        assert svc.aggregate_throughput().bps > 0

    def test_summary_text(self, bundle):
        svc = TransferService()
        svc.submit(make_plan(bundle))
        svc.run()
        text = svc.summary()
        assert "succeeded" in text and "job 1" in text

    def test_empty_service_stats(self):
        svc = TransferService()
        assert svc.total_moved().bits == 0
        assert svc.makespan().s == 0
        assert svc.aggregate_throughput().bps == 0

"""Differential test: every committed spec produces digest-identical
manifests under the scalar-python and numpy kernel backends.

This is the whole-experiment statement of the bit-identical-backends
contract in :mod:`repro.vectorize` — not just "the kernels agree on a
random input", but "the entire pipeline (scenario runs, sweeps, fault
campaigns, oracle verdicts, report digests) is invariant to which
implementation computes it".

The cache is deliberately disabled: the backend is *not* part of the
cache key (the contract makes it irrelevant), so a warm cache would
serve the first backend's results to the second and mask any
divergence.  Both runs here must actually evaluate.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.experiment import ExperimentSpec, RunContext, run_experiment
from repro.vectorize import use_backend

SPECS = pathlib.Path(__file__).parent.parent / "specs"

SLOW_SPECS = {"fig1_tcp_loss.json"}

SPEC_FILES = sorted(p.name for p in SPECS.glob("*.json")
                    if p.name != "golden.json")


def _run(spec: ExperimentSpec, backend: str):
    with use_backend(backend):
        return run_experiment(spec, RunContext(workers=1, cache=None),
                              persist=False)


def test_committed_spec_list_is_nonempty():
    assert SPEC_FILES, "no committed specs found"
    assert "chaos_quick.json" in SPEC_FILES


@pytest.mark.parametrize("name", SPEC_FILES)
def test_backends_agree_on_committed_spec(name):
    if name in SLOW_SPECS and not os.environ.get("REPRO_SLOW_TESTS"):
        pytest.skip(f"{name} is slow; set REPRO_SLOW_TESTS=1 to run")
    spec = ExperimentSpec.from_file(SPECS / name)

    numpy_result = _run(spec, "numpy")
    python_result = _run(spec, "python")

    assert numpy_result.manifest.spec_digest \
        == python_result.manifest.spec_digest
    assert numpy_result.manifest.result_digest \
        == python_result.manifest.result_digest, \
        f"backend divergence on {name}"
    assert numpy_result.payload == python_result.payload


def test_backend_differential_not_masked_by_cache(tmp_path):
    """Sanity check on the methodology: with a shared cache the second
    backend would evaluate nothing, proving cache=None is load-bearing."""
    spec = ExperimentSpec.from_file(SPECS / "linecard_softfail.json")
    cache = tmp_path / "cache"
    with use_backend("numpy"):
        run_experiment(spec, RunContext(workers=1, cache=cache),
                       persist=False)
    ctx = RunContext(workers=1, cache=cache)
    with use_backend("python"):
        run_experiment(spec, ctx, persist=False)
    assert ctx.stats().get("exec.runner.evaluated", 0) == 0


FEDERATION_SPECS = sorted(
    p.name for p in SPECS.glob("*.json")
    if p.name != "golden.json"
    and json.loads(p.read_text()).get("kind") == "federation")


def test_federation_spec_is_committed():
    assert "federation_quick.json" in FEDERATION_SPECS


@pytest.mark.parametrize("name", FEDERATION_SPECS)
def test_federation_serial_pooled_and_warm_agree(name, tmp_path):
    """Federation specs honor the full exec contract: serial, 4-worker
    pooled, and cache-warm runs produce byte-identical manifests, and
    the warm run evaluates nothing."""
    spec = ExperimentSpec.from_file(SPECS / name)
    cache = tmp_path / "cache"

    serial = run_experiment(spec, RunContext(workers=1, cache=cache),
                            persist=False)
    pooled = run_experiment(spec, RunContext(workers=4, cache=None),
                            persist=False)
    warm_ctx = RunContext(workers=1, cache=cache)
    warm = run_experiment(spec, warm_ctx, persist=False)

    assert serial.manifest.result_digest == pooled.manifest.result_digest
    assert serial.manifest.result_digest == warm.manifest.result_digest
    assert serial.payload == pooled.payload == warm.payload
    assert warm_ctx.stats().get("exec.runner.evaluated", 0) == 0


def test_golden_entries_cover_committed_specs():
    """Every golden.json entry points at a committed spec whose digest
    still matches — the differential test and the golden gate stay in
    lockstep."""
    golden = json.loads((SPECS / "golden.json").read_text())
    by_name = {}
    for name in SPEC_FILES:
        spec = ExperimentSpec.from_file(SPECS / name)
        by_name[spec.name] = spec
    for entry, digests in golden.items():
        assert entry in by_name, f"golden entry {entry} has no spec file"
        assert by_name[entry].digest() == digests["spec_digest"], entry

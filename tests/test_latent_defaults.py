"""Regression tests for the latent shared-default and RNG-discipline
bugs surfaced while wiring the chaos oracles.

``ThresholdAlerter(rule=AlertRule())`` and
``MeshSchedule(config=MeshConfig())`` used to bake a *single* default
instance into the function signature — one object silently shared by
every alerter/mesh in the process, a classic mutable-default landmine
the moment either type grows state.  Both now take a ``None`` sentinel
and construct a fresh default per instance.

The RNG discipline is the complementary audit: nothing in
``devices.faults`` or ``perfsonar.alerts`` may hold module-level
mutable state or an ambient random generator; stochastic code paths
must demand an explicit seeded ``Generator`` instead of silently
falling back to a global one.
"""

from __future__ import annotations

import inspect

import pytest

from repro.core import simple_science_dmz
from repro.devices import FailingLineCard, faults as faults_mod
from repro.dtn.transfer import Dataset, TransferPlan
from repro.errors import TransferError
from repro.netsim.engine import Simulator
from repro.perfsonar import alerts as alerts_mod
from repro.perfsonar.alerts import AlertRule, ThresholdAlerter
from repro.perfsonar.archive import MeasurementArchive
from repro.perfsonar.mesh import MeshConfig, MeshSchedule
from repro.units import GB


def make_mesh(**kwargs) -> MeshSchedule:
    bundle = simple_science_dmz()
    return MeshSchedule(bundle.topology, ("dmz-perfsonar", "remote-dtn"),
                        Simulator(seed=1), MeasurementArchive(), **kwargs)


class TestNoSharedDefaultInstances:
    def test_alerters_do_not_share_a_rule(self):
        a = ThresholdAlerter(MeasurementArchive())
        b = ThresholdAlerter(MeasurementArchive())
        assert a.rule is not b.rule
        assert a.rule == b.rule  # same *thresholds*, distinct objects

    def test_meshes_do_not_share_a_config(self):
        assert make_mesh().config is not make_mesh().config

    def test_explicit_instances_are_used_verbatim(self):
        rule = AlertRule(loss_rate_threshold=0.5)
        assert ThresholdAlerter(MeasurementArchive(), rule).rule is rule
        config = MeshConfig(owamp_packets=7)
        assert make_mesh(config=config).config is config

    def test_signatures_default_to_none_not_an_instance(self):
        """The fix itself: no instance may live in the signature."""
        rule_default = inspect.signature(
            ThresholdAlerter.__init__).parameters["rule"].default
        assert rule_default is None
        config_default = inspect.signature(
            MeshSchedule.__init__).parameters["config"].default
        assert config_default is None


class TestNoModuleLevelMutableState:
    @pytest.mark.parametrize("module", [faults_mod, alerts_mod])
    def test_module_globals_are_immutable(self, module):
        """Neither audited module may keep lists/dicts/sets or an RNG at
        module scope — everything mutable belongs to instances."""
        for name, value in vars(module).items():
            if name.startswith("__") or name == "__all__":
                continue
            if inspect.ismodule(value) or inspect.isclass(value) \
                    or inspect.isfunction(value):
                continue
            assert not isinstance(value, (list, dict, set)), \
                f"{module.__name__}.{name} is module-level mutable state"
            assert "Generator" not in type(value).__name__, \
                f"{module.__name__}.{name} is an ambient RNG"


class TestExplicitRngDiscipline:
    def test_lossy_transfer_demands_an_rng(self):
        """A path with random loss must refuse to run unseeded rather
        than reach for a hidden global generator."""
        bundle = simple_science_dmz()
        bundle.topology.node("border").attach(FailingLineCard())
        plan = TransferPlan(
            bundle.topology, bundle.dtns[0], bundle.remote_dtn,
            Dataset("d", GB(1.0), file_count=1), "gridftp",
            policy=bundle.science_policy)
        with pytest.raises(TransferError, match="requires an rng"):
            plan.execute()

    def test_no_default_rng_parameter_anywhere_in_faults(self):
        """No callable in devices.faults may default an rng parameter to
        a generator instance."""
        for _, obj in inspect.getmembers(faults_mod, inspect.isclass):
            for _, member in inspect.getmembers(obj, inspect.isfunction):
                for param in inspect.signature(member).parameters.values():
                    if "rng" in param.name:
                        assert param.default in (None,
                                                 inspect.Parameter.empty)

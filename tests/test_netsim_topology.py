"""Tests for topology construction, policy routing, and path profiles."""

import pytest

from repro.devices.firewall import Firewall
from repro.errors import RoutingError, TopologyError
from repro.netsim import Link, Topology
from repro.netsim.node import Host, Router, Switch
from repro.netsim.routing import ANY_PATH, ENTERPRISE_POLICY, SCIENCE_POLICY
from repro.units import Gbps, KB, bytes_, ms, us


def dual_path_topology():
    """WAN <- border <- {firewalled campus path, tagged science path} <- hosts."""
    topo = Topology("dual")
    topo.add_node(Router(name="wan"))
    topo.add_node(Router(name="border"))
    topo.connect("border", "wan", Link(rate=Gbps(10), delay=ms(20),
                                       mtu=bytes_(9000)))
    fw = topo.add_node(Firewall(name="fw"))
    fw.policy.allow()
    topo.add_node(Switch(name="campus"))
    topo.connect("border", "fw", Link(rate=Gbps(10), delay=us(10)))
    topo.connect("fw", "campus", Link(rate=Gbps(10), delay=us(10)))
    topo.add_host("lab", nic_rate=Gbps(1))
    topo.connect("campus", "lab", Link(rate=Gbps(1), delay=us(10)))

    topo.add_node(Switch(name="dmz", tags={"science-dmz"}))
    topo.connect("border", "dmz", Link(rate=Gbps(10), delay=us(10),
                                       mtu=bytes_(9000), tags={"science"}))
    topo.add_host("dtn", nic_rate=Gbps(10))
    topo.connect("dmz", "dtn", Link(rate=Gbps(10), delay=us(10),
                                    mtu=bytes_(9000), tags={"science"}))
    # Cross-connect so the lab *could* reach the DMZ fabric.
    topo.connect("campus", "dmz", Link(rate=Gbps(1), delay=us(10)))
    return topo


class TestConstruction:
    def test_duplicate_node_rejected(self):
        topo = Topology("t")
        topo.add_host("a")
        with pytest.raises(TopologyError):
            topo.add_host("a")

    def test_self_link_rejected(self):
        topo = Topology("t")
        topo.add_host("a")
        with pytest.raises(TopologyError):
            topo.connect("a", "a", Link(rate=Gbps(1), delay=ms(1)))

    def test_parallel_links_rejected(self):
        topo = Topology("t")
        topo.add_host("a")
        topo.add_host("b")
        topo.connect("a", "b", Link(rate=Gbps(1), delay=ms(1)))
        with pytest.raises(TopologyError):
            topo.connect("a", "b", Link(rate=Gbps(1), delay=ms(1)))

    def test_unknown_node_lookup(self):
        topo = Topology("t")
        with pytest.raises(TopologyError):
            topo.node("ghost")

    def test_remove_link(self):
        topo = Topology("t")
        topo.add_host("a")
        topo.add_host("b")
        topo.connect("a", "b", Link(rate=Gbps(1), delay=ms(1)))
        topo.remove_link("a", "b")
        with pytest.raises(RoutingError):
            topo.path("a", "b")

    def test_nodes_filtered_by_kind_and_tag(self):
        topo = dual_path_topology()
        assert {n.name for n in topo.nodes(kind="firewall")} == {"fw"}
        assert {n.name for n in topo.nodes(tag="science-dmz")} == {"dmz"}

    def test_counts(self):
        topo = dual_path_topology()
        assert topo.node_count == 7
        assert topo.link_count == 7


class TestRouting:
    def test_shortest_path_by_latency(self, star_topology):
        path = star_topology.path("h1", "h2")
        assert path.node_names() == ["h1", "core", "h2"]
        assert path.hop_count == 2

    def test_default_path_prefers_low_latency(self):
        topo = dual_path_topology()
        # lab -> dtn: direct campus->dmz cross-connect is fewer ms than
        # going around; just assert a path exists and is loop-free.
        path = topo.path("lab", "dtn")
        names = path.node_names()
        assert len(names) == len(set(names))

    def test_forbid_node_kinds_routes_around_firewall(self):
        topo = dual_path_topology()
        via_fw = topo.path("lab", "wan")
        assert via_fw.traverses_kind("firewall")
        science = topo.path("dtn", "wan", forbid_node_kinds=("firewall",))
        assert not science.traverses_kind("firewall")

    def test_require_link_tags(self):
        topo = dual_path_topology()
        path = topo.path("dtn", "border", require_link_tags=("science",))
        assert path.node_names() == ["dtn", "dmz", "border"]

    def test_require_unsatisfiable_tag_raises(self):
        topo = dual_path_topology()
        with pytest.raises(RoutingError):
            topo.path("lab", "wan", require_link_tags=("science",))

    def test_forbid_link_tags(self):
        topo = dual_path_topology()
        path = topo.path("lab", "wan", forbid_link_tags=("science",))
        assert "dmz" not in path.node_names()

    def test_forbid_node_tags(self):
        topo = dual_path_topology()
        path = topo.path("lab", "wan", forbid_node_tags=("science-dmz",))
        assert "dmz" not in path.node_names()

    def test_via_waypoints(self):
        topo = dual_path_topology()
        path = topo.path("lab", "wan", via=["dmz"])
        assert "dmz" in path.node_names()

    def test_endpoints_exempt_from_node_filters(self):
        topo = dual_path_topology()
        # dtn is reachable even if we forbid its own tags elsewhere.
        path = topo.path("dtn", "wan", forbid_node_tags=("dtn",))
        assert path.src.name == "dtn"

    def test_routing_policies_objects(self):
        topo = dual_path_topology()
        sci = topo.path("dtn", "wan", **SCIENCE_POLICY.kwargs())
        assert not sci.traverses_kind("firewall")
        ent = topo.path("lab", "wan", **ENTERPRISE_POLICY.kwargs())
        assert ent.traverses_kind("firewall")
        assert ANY_PATH.kwargs()["require_link_tags"] == ()

    def test_policy_merge(self):
        merged = SCIENCE_POLICY.merged(ENTERPRISE_POLICY)
        assert "firewall" in merged.forbid_node_kinds
        assert "science" in merged.forbid_link_tags


class TestPathProfile:
    def test_capacity_is_bottleneck(self, clean_path_topology):
        profile = clean_path_topology.profile_between("a", "b")
        assert profile.capacity.gbps == pytest.approx(10)

    def test_rtt_is_twice_one_way(self, clean_path_topology):
        profile = clean_path_topology.profile_between("a", "b")
        assert profile.base_rtt.ms == pytest.approx(50, rel=0.01)

    def test_loss_combines_across_segments(self):
        topo = Topology("lossy")
        topo.add_host("a", nic_rate=Gbps(1))
        topo.add_host("b", nic_rate=Gbps(1))
        topo.add_node(Router(name="r"))
        topo.connect("a", "r", Link(rate=Gbps(1), delay=ms(1),
                                    loss_probability=0.01))
        topo.connect("r", "b", Link(rate=Gbps(1), delay=ms(1),
                                    loss_probability=0.02))
        profile = topo.profile_between("a", "b")
        expected = 1 - (1 - 0.01) * (1 - 0.02)
        assert profile.random_loss == pytest.approx(expected)

    def test_mss_clamped_to_path_mtu(self):
        topo = Topology("mixed-mtu")
        topo.add_host("a", nic_rate=Gbps(10))
        topo.add_host("b", nic_rate=Gbps(10))
        topo.add_node(Router(name="r"))
        topo.connect("a", "r", Link(rate=Gbps(10), delay=ms(1),
                                    mtu=bytes_(9000)))
        topo.connect("r", "b", Link(rate=Gbps(10), delay=ms(1),
                                    mtu=bytes_(1500)))
        profile = topo.profile_between("a", "b")
        assert profile.mtu.bytes == 1500
        assert profile.flow.mss.bytes == 1500 - 40

    def test_firewall_transforms_flow(self):
        topo = dual_path_topology()
        profile = topo.profile_between("lab", "wan")
        assert profile.flow.window_scaling is False or \
            not topo.node("fw").sequence_checking
        # Enable sequence checking explicitly and re-profile.
        topo.node("fw").sequence_checking = True
        profile = topo.profile_between("lab", "wan")
        assert profile.flow.window_scaling is False
        assert profile.flow.effective_receive_window().bits == KB(64).bits

    def test_bottleneck_identified(self):
        topo = dual_path_topology()
        profile = topo.profile_between("lab", "wan")
        # The firewall's per-flow processor rate is the bottleneck.
        assert "fw" in profile.bottleneck_name

    def test_bottleneck_buffer_propagates(self):
        topo = dual_path_topology()
        profile = topo.profile_between("lab", "wan")
        assert profile.bottleneck_buffer is not None
        assert profile.bottleneck_buffer.bits == KB(512).bits

    def test_segment_loss_parallel_to_names(self, clean_path_topology):
        profile = clean_path_topology.profile_between("a", "b")
        assert len(profile.segment_loss) == len(profile.element_names)

    def test_bdp(self, clean_path_topology):
        profile = clean_path_topology.profile_between("a", "b")
        assert profile.bdp().megabytes == pytest.approx(62.5, rel=0.01)

    def test_path_validation(self):
        from repro.netsim.topology import Path
        with pytest.raises(TopologyError):
            Path(nodes=(Host(name="a"), Host(name="b")), links=())

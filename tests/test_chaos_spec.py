"""CampaignSpec contract: frozen, JSON round-trip, digest, validation."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.chaos import (
    CampaignSpec,
    FaultSpaceSpec,
    OracleSpec,
    TransferProbeSpec,
    sample_schedule,
    sample_schedules,
    schedule_seed,
)
from repro.errors import ConfigurationError
from repro.experiment import ExperimentSpec
from repro.experiment.spec import ScenarioSpec, spec_kinds


def full_spec(**overrides) -> CampaignSpec:
    base = dict(
        name="camp", seed=13, description="a test campaign",
        design="simple-science-dmz", until_s=2000.0,
        space=FaultSpaceSpec(
            kinds=("linecard", "duplex"), min_faults=1, max_faults=3,
            onset_min_s=100.0, onset_max_s=800.0, repair_fraction=0.5,
            cuts=(("border", "wan"),), cut_fraction=0.3),
        schedules=5,
        oracles=(OracleSpec(name="mesh-cadence",
                            params=(("slack_sessions", 2),)),),
        transfer=TransferProbeSpec(size_gb=1.0, files=2),
        shrink=False, max_shrink=0)
    base.update(overrides)
    return CampaignSpec(**base)


class TestRoundTrip:
    def test_json_round_trip_is_lossless(self):
        spec = full_spec()
        again = ExperimentSpec.from_json(spec.to_json())
        assert again == spec
        assert again.digest() == spec.digest()

    def test_defaults_round_trip(self):
        spec = CampaignSpec(name="minimal", seed=1)
        again = ExperimentSpec.from_dict(spec.to_dict())
        assert again == spec

    def test_campaign_is_a_registered_kind(self):
        assert "campaign" in spec_kinds()
        data = full_spec().to_dict()
        assert data["kind"] == "campaign"
        assert isinstance(ExperimentSpec.from_dict(data), CampaignSpec)

    def test_from_file(self, tmp_path):
        spec = full_spec()
        path = tmp_path / "c.json"
        path.write_text(json.dumps(spec.to_dict()))
        assert ExperimentSpec.from_file(path) == spec

    def test_digest_changes_with_any_field(self):
        spec = full_spec()
        assert dataclasses.replace(spec, schedules=6).digest() \
            != spec.digest()
        assert dataclasses.replace(spec, seed=14).digest() != spec.digest()

    def test_committed_chaos_specs_parse(self):
        import pathlib
        root = pathlib.Path(__file__).parent.parent / "specs"
        quick = ExperimentSpec.from_file(root / "chaos_quick.json")
        assert isinstance(quick, CampaignSpec)
        assert quick.schedules == 16
        demo = ExperimentSpec.from_file(
            root / "chaos_demo_broken_oracle.json")
        assert demo.oracles[0].name == "mathis-ceiling"
        replay = ExperimentSpec.from_file(root / "chaos_demo_repro.json")
        assert isinstance(replay, ScenarioSpec)
        assert len(replay.faults) == 1


class TestValidation:
    def test_onsets_must_fit_horizon(self):
        with pytest.raises(ConfigurationError):
            full_spec(until_s=500.0)  # onset_max_s=800 > horizon

    def test_schedules_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            full_spec(schedules=0)

    def test_duplicate_oracles_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate oracle"):
            full_spec(oracles=(OracleSpec(name="mesh-cadence"),
                               OracleSpec(name="mesh-cadence")))

    def test_fault_space_bounds(self):
        with pytest.raises(ConfigurationError):
            FaultSpaceSpec(min_faults=3, max_faults=1)
        with pytest.raises(ConfigurationError):
            FaultSpaceSpec(onset_min_s=500.0, onset_max_s=100.0)
        with pytest.raises(ConfigurationError):
            FaultSpaceSpec(cut_fraction=0.5)  # no cut candidates
        with pytest.raises(ConfigurationError):
            FaultSpaceSpec(kinds=())

    def test_transfer_probe_bounds(self):
        with pytest.raises(ConfigurationError):
            TransferProbeSpec(size_gb=0.0)
        with pytest.raises(ConfigurationError):
            TransferProbeSpec(files=0)


class TestSampling:
    def test_schedules_are_reproducible(self):
        spec = full_spec()
        a = sample_schedules(spec)
        b = sample_schedules(spec)
        assert a == b
        assert [s.digest() for s in a] == [s.digest() for s in b]

    def test_schedule_independent_of_population(self):
        """Adding schedules never perturbs earlier ones (seed tree)."""
        small = full_spec(schedules=3)
        large = full_spec(schedules=9)
        assert sample_schedules(small) == sample_schedules(large)[:3]

    def test_each_schedule_is_runnable_scenario_spec(self):
        for sched in sample_schedules(full_spec()):
            assert isinstance(sched, ScenarioSpec)
            assert sched.until_s == 2000.0
            assert 1 <= len(sched.faults) <= 3
            for fault in sched.faults:
                assert fault.kind in ("linecard", "duplex")
                assert 100.0 <= fault.at_s <= 800.0
            again = ExperimentSpec.from_json(sched.to_json())
            assert again == sched

    def test_seed_changes_every_schedule(self):
        a = sample_schedules(full_spec())
        b = sample_schedules(full_spec(seed=14))
        assert all(x.seed != y.seed for x, y in zip(a, b))

    def test_schedule_seed_derivation(self):
        spec = full_spec()
        assert sample_schedule(spec, 2).seed == schedule_seed(spec, 2)
        assert schedule_seed(spec, 0) != schedule_seed(spec, 1)

    def test_unknown_design_node_fails_at_sampling(self):
        spec = full_spec(space=FaultSpaceSpec(nodes=("no-such-node",)))
        with pytest.raises(ConfigurationError, match="no-such-node"):
            sample_schedules(spec)

    def test_unknown_fault_kind_fails_at_sampling(self):
        spec = full_spec(space=FaultSpaceSpec(kinds=("warp-core",)))
        with pytest.raises(ConfigurationError, match="warp-core"):
            sample_schedules(spec)

    def test_storage_kind_lands_on_dtn(self):
        spec = full_spec(space=FaultSpaceSpec(
            kinds=("storage",), onset_min_s=100.0, onset_max_s=800.0))
        for sched in sample_schedules(spec):
            for fault in sched.faults:
                assert fault.node == "dtn1"

"""Tests for the §5 path-hygiene linter."""


from repro.core import (
    HygieneLevel,
    general_purpose_campus,
    lint_path,
    simple_science_dmz,
)
from repro.devices.firewall import Firewall
from repro.dtn.host import attach_profile, tuned_dtn
from repro.netsim import Link, Topology
from repro.netsim.node import Router
from repro.units import Gbps, bytes_, ms, us


def checks_of(findings):
    return {f.check for f in findings}


class TestCleanPath:
    def test_science_dmz_path_is_clean(self):
        bundle = simple_science_dmz()
        findings = lint_path(bundle.topology, "dtn1", "remote-dtn",
                             policy=bundle.science_policy)
        assert findings == [], [str(f) for f in findings]


class TestFirewallPath:
    def test_campus_path_flagged(self):
        bundle = general_purpose_campus()
        findings = lint_path(bundle.topology, "lab-server1", "remote-dtn")
        found = checks_of(findings)
        assert "firewall-in-path" in found
        assert "window-scaling-stripped" in found  # seq checking is on
        assert "buffer-provisioning" in found      # shallow fw input buffer
        criticals = [f for f in findings
                     if f.level is HygieneLevel.CRITICAL]
        assert criticals and findings[0].level is HygieneLevel.CRITICAL


class TestMtuChecks:
    def test_mixed_mtu_flagged(self):
        topo = Topology("mtu")
        topo.add_host("a", nic_rate=Gbps(10))
        topo.add_host("b", nic_rate=Gbps(10))
        topo.add_node(Router(name="r"))
        topo.connect("a", "r", Link(rate=Gbps(10), delay=ms(1),
                                    mtu=bytes_(9000)))
        topo.connect("r", "b", Link(rate=Gbps(10), delay=ms(1),
                                    mtu=bytes_(1500)))
        findings = lint_path(topo, "a", "b")
        assert "mtu-consistency" in checks_of(findings)

    def test_jumbo_host_on_1500_path_flagged(self):
        topo = Topology("mtu2")
        host = topo.add_host("a", nic_rate=Gbps(10))
        topo.add_host("b", nic_rate=Gbps(10))
        attach_profile(host, tuned_dtn("a"))  # 9000-byte host
        topo.connect("a", "b", Link(rate=Gbps(10), delay=ms(1),
                                    mtu=bytes_(1500)))
        findings = lint_path(topo, "a", "b")
        messages = " ".join(f.message for f in findings)
        assert "mtu-consistency" in checks_of(findings)
        assert "'a'" in messages


class TestNicMatch:
    def test_overpowered_nic_flagged(self):
        topo = Topology("nic")
        topo.add_host("dtn", nic_rate=Gbps(10))
        topo.add_host("peer", nic_rate=Gbps(10))
        topo.add_node(Router(name="border"))
        topo.connect("dtn", "border", Link(rate=Gbps(10), delay=us(10)))
        topo.connect("border", "peer", Link(rate=Gbps(1), delay=ms(20)))
        findings = lint_path(topo, "dtn", "peer")
        assert "nic-uplink-match" in checks_of(findings)

    def test_matched_nic_not_flagged(self):
        topo = Topology("nic2")
        topo.add_host("dtn", nic_rate=Gbps(1))
        topo.add_host("peer", nic_rate=Gbps(1))
        topo.connect("dtn", "peer", Link(rate=Gbps(1), delay=ms(20)))
        assert "nic-uplink-match" not in checks_of(lint_path(topo, "dtn",
                                                             "peer"))


class TestLossCheck:
    def test_residual_loss_is_critical_and_names_culprit(self):
        bundle = simple_science_dmz()
        bundle.topology.link_between("border", "wan").degrade(
            loss_probability=1 / 22000)
        findings = lint_path(bundle.topology, "dtn1", "remote-dtn",
                             policy=bundle.science_policy)
        loss = [f for f in findings if f.check == "residual-loss"]
        assert loss and loss[0].level is HygieneLevel.CRITICAL
        assert "border" in loss[0].message or "wan" in loss[0].message


class TestBufferCheck:
    def test_shallow_bottleneck_flagged(self):
        topo = Topology("buf")
        topo.add_host("a", nic_rate=Gbps(10))
        topo.add_host("b", nic_rate=Gbps(10))
        fw = topo.add_node(Firewall(name="fw", processor_rate=Gbps(1)))
        fw.policy.allow()
        topo.connect("a", "fw", Link(rate=Gbps(10), delay=ms(20)))
        topo.connect("fw", "b", Link(rate=Gbps(10), delay=ms(20)))
        findings = lint_path(topo, "a", "b")
        buf = [f for f in findings if f.check == "buffer-provisioning"]
        assert buf
        assert buf[0].level in (HygieneLevel.WARNING, HygieneLevel.CRITICAL)

"""Tests for the declarative scenario runner."""

import pytest

from repro.core import simple_science_dmz
from repro.devices.faults import FailingLineCard, ManagementCpuForwarding
from repro.errors import ConfigurationError
from repro.perfsonar import Metric
from repro.scenario import Scenario
from repro.units import minutes


def base_scenario(seed=7):
    bundle = simple_science_dmz()
    return Scenario(bundle, seed=seed).with_mesh(
        ["dmz-perfsonar", "remote-dtn"])


class TestScenarioLifecycle:
    def test_fault_detected_and_attributed(self):
        scenario = base_scenario().inject("border", FailingLineCard(),
                                          at=minutes(30))
        outcome = scenario.run(until=minutes(90))
        assert outcome.alerts
        assert outcome.detected(0)
        delay = outcome.detection_delays[0]
        assert 0 <= delay <= minutes(30).s

    def test_repair_clears_faults(self):
        scenario = (base_scenario()
                    .inject("border", FailingLineCard(), at=minutes(20))
                    .repair_at(minutes(50)))
        outcome = scenario.run(until=minutes(80))
        fault = outcome.faults[0]
        assert fault.cleared_at == pytest.approx(minutes(50).s)
        # The path is clean again post-repair.
        profile = scenario.bundle.topology.profile_between(
            "dtn1", "remote-dtn", **scenario.bundle.science_policy)
        assert profile.random_loss == 0.0

    def test_clean_scenario_raises_no_alerts(self):
        outcome = base_scenario().run(until=minutes(45))
        loss_alerts = [a for a in outcome.alerts
                       if a.metric is Metric.LOSS_RATE]
        assert loss_alerts == []
        assert outcome.archive.count() > 0

    def test_multiple_faults_tracked_independently(self):
        scenario = (base_scenario(seed=9)
                    .inject("border", FailingLineCard(), at=minutes(20))
                    .inject("dmz-switch", ManagementCpuForwarding(),
                            at=minutes(40)))
        outcome = scenario.run(until=minutes(100))
        assert len(outcome.faults) == 2
        assert set(outcome.detection_delays) == {0, 1}
        assert outcome.detected(0)

    def test_summary_renders(self):
        scenario = base_scenario().inject("border", FailingLineCard(),
                                          at=minutes(30))
        outcome = scenario.run(until=minutes(70))
        text = outcome.summary()
        assert "alerts" in text and "fault #0" in text


class TestScenarioValidation:
    def test_needs_mesh(self):
        bundle = simple_science_dmz()
        with pytest.raises(ConfigurationError):
            Scenario(bundle).run(until=minutes(10))

    def test_single_use(self):
        scenario = base_scenario()
        scenario.run(until=minutes(10))
        with pytest.raises(ConfigurationError):
            scenario.run(until=minutes(20))

    def test_double_mesh_rejected(self):
        scenario = base_scenario()
        with pytest.raises(ConfigurationError):
            scenario.with_mesh(["dmz-perfsonar", "remote-dtn"])

    def test_unknown_node_rejected(self):
        with pytest.raises(ConfigurationError):
            base_scenario().inject("ghost", FailingLineCard(),
                                   at=minutes(1))


class TestHardFailures:
    def test_fiber_cut_recorded_not_crashing(self):
        """A hard failure (link down) must not crash the mesh; it shows
        as total loss / zero throughput in the archive."""
        from repro.perfsonar import Metric
        scenario = base_scenario(seed=11).cut_link("border", "wan",
                                                   at=minutes(20))
        outcome = scenario.run(until=minutes(40))
        times, values = outcome.archive.series(
            "dmz-perfsonar", "remote-dtn", Metric.LOSS_RATE)
        post_cut = values[times >= minutes(20).s]
        assert len(post_cut) > 0
        assert (post_cut == 1.0).all()
        assert scenario._mesh.unreachable_events

    def test_cut_validates_link_exists(self):
        from repro.errors import TopologyError
        import pytest as _pytest
        with _pytest.raises(TopologyError):
            base_scenario().cut_link("border", "ghost", at=minutes(1))

    def test_hard_failure_raises_loss_alerts(self):
        scenario = base_scenario(seed=12).cut_link("border", "wan",
                                                   at=minutes(20))
        outcome = scenario.run(until=minutes(40))
        assert any(a.time >= minutes(20).s and a.value == 1.0
                   for a in outcome.alerts)

"""Executable checks for docs/tutorial.md — every snippet must run."""

import numpy as np
import pytest

from repro.core import (
    apply_upgrade,
    general_purpose_campus,
    plan_upgrade,
    simple_science_dmz,
)
from repro.devices import FailingLineCard, FaultInjector
from repro.dtn import Dataset, TransferPlan
from repro.netsim import Link, Simulator, Topology
from repro.netsim.node import Router
from repro.perfsonar import (
    MeasurementArchive,
    MeshConfig,
    MeshSchedule,
    ThresholdAlerter,
    localize_loss,
)
from repro.tcp import HTcp, TcpConnection
from repro.units import GB, Gbps, KB, bytes_, minutes, ms, parse_size


def test_section_1_units():
    window = Gbps(1).bdp(ms(10))
    assert window.megabytes == 1.25
    assert KB(64).bytes == 65536
    assert parse_size("239.5GB").gigabytes == 239.5


@pytest.fixture
def tutorial_topology():
    topo = Topology("my-campus")
    topo.add_host("dtn", nic_rate=Gbps(10))
    topo.add_node(Router(name="border"))
    topo.add_node(Router(name="wan"))
    topo.connect("dtn", "border", Link(rate=Gbps(10), delay=ms(0.1),
                                       mtu=bytes_(9000)))
    topo.connect("border", "wan", Link(rate=Gbps(10), delay=ms(20),
                                       mtu=bytes_(9000)))
    return topo


def test_section_2_topology(tutorial_topology):
    profile = tutorial_topology.profile_between("dtn", "wan")
    assert profile.capacity.gbps == 10
    assert profile.base_rtt.ms > 40


def test_section_3_tcp(tutorial_topology):
    profile = tutorial_topology.profile_between("dtn", "wan")
    clean = TcpConnection(profile, algorithm=HTcp()).transfer(GB(100))
    assert "GB" in clean.summary()

    tutorial_topology.link_between("border", "wan").degrade(
        loss_probability=1 / 22000)
    lossy_profile = tutorial_topology.profile_between("dtn", "wan")
    lossy = TcpConnection(lossy_profile, algorithm=HTcp(),
                          rng=np.random.default_rng(0)).transfer(
        GB(10), max_rounds=60_000)
    assert lossy.mean_throughput.bps < clean.mean_throughput.bps


def test_sections_4_and_5_designs_and_transfers():
    bundle = simple_science_dmz()
    assert bundle.audit().passed
    report = TransferPlan(bundle.topology, "remote-dtn", "dtn1",
                          Dataset("sample", GB(100), 100), "globus",
                          policy=bundle.science_policy).execute()
    assert report.duration.s > 0


def test_section_6_monitoring():
    bundle = simple_science_dmz()
    sim = Simulator(seed=7)
    archive = MeasurementArchive()
    mesh = MeshSchedule(bundle.topology, ["dmz-perfsonar", "remote-dtn"],
                        sim, archive,
                        config=MeshConfig(owamp_interval=minutes(1),
                                          bwctl_interval=minutes(10),
                                          owamp_packets=20_000),
                        policy=bundle.science_policy)
    mesh.start()
    injector = FaultInjector(sim)
    injector.inject_at(minutes(30), bundle.topology.node("border"),
                       FailingLineCard())
    sim.run_until(minutes(60).s)
    alerts = ThresholdAlerter(archive).scan()
    assert alerts
    path = bundle.topology.path("dmz-perfsonar", "remote-dtn",
                                **bundle.science_policy)
    culprits = localize_loss(bundle.topology, path)
    assert culprits and "border" in culprits[0][0]


def test_section_7_tracing(tmp_path):
    from repro.scenario import Scenario
    from repro.telemetry import write_chrome_trace, write_jsonl

    scenario = (Scenario(simple_science_dmz(), seed=7)
                .with_mesh(["dmz-perfsonar", "remote-dtn"])
                .inject("border", FailingLineCard(), at=minutes(30)))
    outcome = scenario.run(until=minutes(120), trace=True)
    tracer = outcome.trace
    assert "perfsonar" in tracer.metrics.render_text()
    assert "flight recorder" in tracer.recorder.render_tail(10)
    trace_path = write_chrome_trace(tracer.events(),
                                    tmp_path / "dmz.trace.json",
                                    metrics=tracer.metrics)
    jsonl_path = write_jsonl(tracer.events(), tmp_path / "dmz.jsonl")
    assert trace_path.exists() and jsonl_path.exists()


def test_section_8_experiments(tmp_path):
    from repro.experiment import (
        ExperimentSpec,
        FaultSpec,
        MeshSpec,
        RunContext,
        ScenarioSpec,
        run_experiment,
    )

    spec = ScenarioSpec(
        name="linecard-softfail",
        seed=5,
        until_s=minutes(90).s,
        mesh=MeshSpec(hosts=("dmz-perfsonar", "remote-dtn")),
        faults=(FaultSpec(kind="linecard", at_s=minutes(30).s),),
    )
    assert ExperimentSpec.from_json(spec.to_json()) == spec

    result = run_experiment(spec, RunContext(cache=tmp_path / "cache",
                                             artifacts=tmp_path / "runs"))
    assert result.payload["detection_delays_s"]["0"] is not None
    assert len(result.manifest.digest()) == 64


def test_section_9_fault_campaigns():
    from repro.chaos import CampaignSpec, FaultSpaceSpec, render_report
    from repro.experiment import run_experiment

    campaign = CampaignSpec(
        name="smoke", seed=7, design="simple-science-dmz", until_s=1500.0,
        space=FaultSpaceSpec(onset_min_s=120.0, onset_max_s=900.0),
        schedules=8,
    )
    result = run_experiment(campaign, persist=False)
    assert "survival by fault count" in render_report(result.payload)
    assert result.manifest.summary["failed"] == 0


def test_section_12_federation():
    from repro.experiment import RunContext, run_experiment
    from repro.federation import build_federation, default_federation_spec

    spec = default_federation_spec("fed-tour", seed=11,
                                   cache_scales=(0.5, 1.0, 2.0))
    fed = build_federation(spec)
    assert fed.route("uni-a", "lab") == ["uni-a", "regional-east", "lab"]
    assert [c.name for c in fed.tier_chain("uni-a")] == \
        ["uni-a-cache", "regional-east-cache"]

    result = run_experiment(spec, RunContext(cache=None), persist=False)
    curve = result.payload["curve"]
    assert [p["scale"] for p in curve] == [0.5, 1.0, 2.0]
    assert all(p["byte_savings"] > 0 for p in curve)
    hit_rates = [p["hit_rate"] for p in curve]
    assert hit_rates == sorted(hit_rates)


def test_section_13_upgrade():
    baseline = general_purpose_campus()
    plan = plan_upgrade(baseline.topology, science_hosts=baseline.dtns,
                        border=baseline.border, wan=baseline.wan)
    assert plan.needed
    result = apply_upgrade(baseline.topology, science_hosts=baseline.dtns,
                           border=baseline.border, wan=baseline.wan)
    assert result.successful

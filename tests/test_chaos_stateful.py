"""Stateful property test: the netsim engine under adversarial driving.

A hypothesis :class:`RuleBasedStateMachine` schedules, cancels and
advances events on a live :class:`~repro.netsim.engine.Simulator` —
with a topology whose link gets cut and reconnected mid-run — and
checks the same invariants the chaos oracles enforce on full campaign
runs, as machine invariants after *every* rule:

* simulated time never decreases and fired events never run early
  (the ``event-time-monotonic`` oracle, reusing
  :func:`repro.chaos.check_monotonic`);
* ``sim.pending`` equals the machine's own count of live events
  (schedule/cancel/fire bookkeeping conserves events the way the
  ``packets-conserved`` oracle expects counters to balance);
* events fire in exact ``(time, seq)`` order — same-time events run
  in scheduling order;
* ``events_processed`` only grows, by exactly the number of observed
  firings;
* cancelled events never fire, and cancelling twice is a no-op;
* reachability between the test hosts always matches the machine's
  own model of the cut link (the ground-truth discipline behind
  ``ProfileTimeline``).
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.chaos import check_bounded, check_monotonic
from repro.core import simple_science_dmz
from repro.errors import RoutingError, SimulationError
from repro.netsim.engine import Simulator

import pytest


class EngineMachine(RuleBasedStateMachine):
    @initialize(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def setup(self, seed):
        self.sim = Simulator(seed=seed)
        self.bundle = simple_science_dmz()
        self.topology = self.bundle.topology
        self.link_up = True
        self.saved_link = None
        self.live = {}          # seq -> live Event (Events are unhashable)
        self.fired = []         # (time, seq) in firing order
        self.fire_times = []    # observed sim.now at each firing
        self.processed_base = self.sim.events_processed

    # -- helpers ---------------------------------------------------------------
    def _record(self, event_box):
        def action():
            event = event_box[0]
            self.live.pop(event.seq, None)
            self.fired.append((event.time, event.seq))
            self.fire_times.append(self.sim.now)
        return action

    # -- rules -----------------------------------------------------------------
    @rule(delay=st.floats(min_value=0.0, max_value=100.0,
                          allow_nan=False, allow_infinity=False))
    def schedule_relative(self, delay):
        box = []
        event = self.sim.schedule(delay, self._record(box))
        box.append(event)
        self.live[event.seq] = event

    @rule(offset=st.floats(min_value=0.0, max_value=200.0,
                           allow_nan=False, allow_infinity=False))
    def schedule_absolute(self, offset):
        box = []
        event = self.sim.schedule_at(self.sim.now + offset,
                                     self._record(box))
        box.append(event)
        self.live[event.seq] = event

    @rule()
    def schedule_in_past_rejected(self):
        if self.sim.now > 0:
            with pytest.raises(SimulationError):
                self.sim.schedule_at(self.sim.now / 2 - 1e-9, lambda: None)

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def cancel_one(self, data):
        seq = data.draw(st.sampled_from(sorted(self.live)))
        event = self.live[seq]
        event.cancel()
        del self.live[seq]
        event.cancel()  # double-cancel must be a harmless no-op
        assert event.cancelled

    @precondition(lambda self: self.live)
    @rule()
    def step_once(self):
        before = len(self.fired)
        assert self.sim.step() is True
        assert len(self.fired) == before + 1

    @rule(horizon=st.floats(min_value=0.0, max_value=50.0,
                            allow_nan=False, allow_infinity=False))
    def advance(self, horizon):
        self.sim.run_until(self.sim.now + horizon)
        # Everything due by the horizon has fired.
        assert all(ev.time > self.sim.now - 1e-12
                   for ev in self.live.values())

    @precondition(lambda self: self.link_up)
    @rule()
    def cut_link(self):
        self.saved_link = self.topology.link_between("border", "wan")
        self.topology.remove_link("border", "wan")
        self.link_up = False

    @precondition(lambda self: not self.link_up)
    @rule()
    def reconnect_link(self):
        self.topology.connect("border", "wan", self.saved_link)
        self.link_up = True

    # -- invariants -----------------------------------------------------------
    @invariant()
    def time_is_monotonic(self):
        assert check_monotonic(self.fire_times,
                               label="fire-time") == []
        assert check_bounded(self.sim.now, 0.0, float("inf"),
                             label="sim.now") == []

    @invariant()
    def pending_matches_live_bookkeeping(self):
        assert self.sim.pending == len(self.live)

    @invariant()
    def fired_in_time_seq_order(self):
        assert self.fired == sorted(self.fired)

    @invariant()
    def events_fire_at_their_scheduled_time(self):
        assert all(when == now for (when, _), now
                   in zip(self.fired, self.fire_times))

    @invariant()
    def processed_counter_balances(self):
        assert (self.sim.events_processed - self.processed_base
                == len(self.fired))

    @invariant()
    def reachability_matches_link_model(self):
        try:
            self.topology.profile_between(
                "dtn1", "remote-dtn", **self.bundle.science_policy)
            reachable = True
        except RoutingError:
            reachable = False
        assert reachable == self.link_up


EngineMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None)
TestEngineMachine = EngineMachine.TestCase

"""Tests for storage subsystems and host system profiles (§3.2)."""

import pytest

from repro.dtn.host import (
    DTN_APPS,
    HostSystemProfile,
    attach_profile,
    tuned_dtn,
    untuned_host,
)
from repro.dtn.storage import (
    ParallelFilesystem,
    RaidArray,
    SingleDisk,
    StorageAreaNetwork,
)
from repro.errors import ConfigurationError
from repro.netsim.node import FlowContext, Host, Router
from repro.units import GBps, KB, MB, MBps, bytes_


class TestSingleDisk:
    def test_sequential_rate(self):
        disk = SingleDisk(sequential_rate=MBps(150))
        assert disk.read_rate().MBps == pytest.approx(150)

    def test_seek_penalty_with_streams(self):
        disk = SingleDisk(sequential_rate=MBps(150), seek_penalty=0.15)
        assert disk.read_rate(4).MBps == pytest.approx(150 * 0.55)

    def test_ssd_no_penalty(self):
        ssd = SingleDisk(sequential_rate=MBps(500), seek_penalty=0.0)
        assert ssd.read_rate(8).MBps == pytest.approx(500)

    def test_floor_at_ten_percent(self):
        disk = SingleDisk(seek_penalty=0.3)
        assert disk.read_rate(100).bps == pytest.approx(
            disk.sequential_rate.bps * 0.1)

    def test_stream_validation(self):
        with pytest.raises(ConfigurationError):
            SingleDisk().read_rate(0)


class TestRaidArray:
    def test_scales_with_disks_to_controller(self):
        raid = RaidArray(disks=4, per_disk_rate=MBps(150),
                         controller_limit=GBps(10))
        assert raid.read_rate().MBps == pytest.approx(600)

    def test_controller_limit_caps(self):
        raid = RaidArray(disks=16, per_disk_rate=MBps(150),
                         controller_limit=GBps(1.2))
        assert raid.read_rate().MBps == pytest.approx(1200)

    def test_write_parity_penalty(self):
        raid = RaidArray(disks=4, per_disk_rate=MBps(150),
                         controller_limit=GBps(10), write_efficiency=0.8)
        assert raid.write_rate().MBps == pytest.approx(480)


class TestSan:
    def test_fabric_bound(self):
        san = StorageAreaNetwork(fabric_rate=GBps(1.6), array_rate=GBps(4))
        assert san.read_rate().bps == GBps(1.6).bps


class TestParallelFilesystem:
    def test_aggregate_scales_with_osts(self):
        pfs = ParallelFilesystem(ost_count=32, per_ost_rate=MBps(500))
        assert pfs.aggregate_rate.MBps == pytest.approx(16000)

    def test_single_client_below_limit(self):
        pfs = ParallelFilesystem(per_client_limit=GBps(2.5))
        assert pfs.read_rate(1).bps < GBps(2.5).bps

    def test_streams_approach_client_limit(self):
        pfs = ParallelFilesystem(per_client_limit=GBps(2.5))
        rates = [pfs.read_rate(s).bps for s in (1, 2, 4, 8)]
        assert rates == sorted(rates)
        assert rates[-1] == pytest.approx(GBps(2.5).bps)

    def test_shared_with_compute_flag(self):
        # §4.2: the point of DTNs mounting the parallel FS directly.
        assert ParallelFilesystem().shared_with_compute
        assert not SingleDisk().shared_with_compute


class TestHostProfiles:
    def test_untuned_defaults(self):
        prof = untuned_host()
        assert not prof.dedicated
        assert prof.runs_general_purpose_apps()
        assert prof.mtu.bytes == 1500
        assert prof.congestion_algorithm == "reno"

    def test_tuned_dtn_defaults(self):
        prof = tuned_dtn()
        assert prof.dedicated
        assert not prof.runs_general_purpose_apps()
        assert prof.mtu.bytes == 9000
        assert prof.congestion_algorithm == "htcp"
        assert prof.tcp_buffer_max.bits == MB(256).bits
        assert set(prof.installed_apps) == set(DTN_APPS)

    def test_transform_sets_window_from_host_buffers(self):
        prof = untuned_host()  # 4 MB buffers
        ctx = FlowContext(mss=bytes_(8960), max_receive_window=MB(256))
        out = prof.transform_flow(ctx)
        assert out.max_receive_window.bits == MB(4).bits

    def test_transform_clamps_mss_to_host_mtu(self):
        prof = untuned_host()  # 1500 MTU
        ctx = FlowContext(mss=bytes_(8960))
        out = prof.transform_flow(ctx)
        assert out.mss.bytes == 1500 - 40

    def test_tuned_host_preserves_jumbo_and_raises_window(self):
        prof = tuned_dtn()
        ctx = FlowContext(mss=bytes_(8960), max_receive_window=MB(16))
        out = prof.transform_flow(ctx)
        assert out.mss.bytes == 8960
        # The tuned receiver's buffers RAISE the ceiling above the
        # conservative default — that is the point of DTN tuning.
        assert out.max_receive_window.bits == MB(256).bits

    def test_attach_profile_to_host(self):
        host = Host(name="h")
        prof = tuned_dtn("h")
        attach_profile(host, prof)
        assert host.meta["host_profile"] is prof
        assert prof in host.elements

    def test_attach_replaces_previous(self):
        host = Host(name="h")
        attach_profile(host, untuned_host("h"))
        new = tuned_dtn("h")
        attach_profile(host, new)
        assert host.meta["host_profile"] is new
        assert len([e for e in host.elements
                    if isinstance(e, HostSystemProfile)]) == 1

    def test_attach_requires_host(self):
        with pytest.raises(ConfigurationError):
            attach_profile(Router(name="r"), tuned_dtn())

    def test_profile_affects_path_profile(self, clean_path_topology):
        # Untuned receiving host drags the whole profile down.
        attach_profile(clean_path_topology.node("b"), untuned_host("b"))
        profile = clean_path_topology.profile_between("a", "b")
        assert profile.flow.max_receive_window.bits == MB(4).bits
        assert profile.flow.mss.bytes == 1460

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HostSystemProfile(tcp_buffer_max=KB(0))
        with pytest.raises(ConfigurationError):
            HostSystemProfile(mtu=bytes_(100))

    def test_describe(self):
        assert "dedicated DTN" in tuned_dtn().describe()
        assert "general-purpose" in untuned_host().describe()

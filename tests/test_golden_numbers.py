"""Golden-number regression tests.

These pin the headline reproduced values (with tolerances) so that
future model changes that silently shift the paper-facing results fail
loudly here, with the paper's expectation in the assertion message.
The benches check *shapes*; this file checks the numbers EXPERIMENTS.md
publishes.
"""

import numpy as np
import pytest

from repro.core import general_purpose_campus, simple_science_dmz
from repro.dtn import RaidArray, TransferPlan, attach_profile, tool_by_name, tuned_dtn
from repro.tcp.mathis import (
    mathis_throughput,
    packets_lost_per_second,
    packets_per_second,
    required_window,
    window_limited_throughput,
)
from repro.units import Gbps, KB, MBps, bytes_, ms
from repro.workloads import NOAA_GEFS_SAMPLE

GOLDEN = {
    # §2 arithmetic — exact.
    "frames_per_second": 812_744,
    "lost_per_second": 37,
    # Eq 2 — exact.
    "window_mb": 1.25,
    "clamp_mbps": (50, 55),
    # §6.3 — banded.
    "noaa_dtn_MBps": (350, 450),
    "noaa_minutes": (8, 13),
    # Figure 1 Mathis point at 50 ms, jumbo MSS, 1/22000 — banded.
    "mathis_50ms_mbps": (200, 230),
}


class TestParagraphTwoArithmetic:
    def test_frames_per_second(self):
        assert round(packets_per_second(Gbps(10), bytes_(1538))) == \
            GOLDEN["frames_per_second"]

    def test_lost_per_second(self):
        assert round(packets_lost_per_second(Gbps(10), bytes_(1538),
                                             1 / 22000)) == \
            GOLDEN["lost_per_second"]


class TestEquationTwoNumbers:
    def test_window(self):
        assert required_window(Gbps(1), ms(10)).megabytes == \
            pytest.approx(GOLDEN["window_mb"])

    def test_clamp(self):
        lo, hi = GOLDEN["clamp_mbps"]
        assert lo < window_limited_throughput(KB(64), ms(10)).mbps < hi


class TestMathisPoint:
    def test_figure1_anchor(self):
        lo, hi = GOLDEN["mathis_50ms_mbps"]
        rate = mathis_throughput(bytes_(8960), ms(50), 1 / 22000)
        assert lo < rate.mbps < hi


class TestNoaaGolden:
    def test_dtn_rate_and_time(self):
        """The §6.3 headline: ~395 MB/s, ~10 min for 239.5 GB."""
        bundle = simple_science_dmz(wan_rtt=ms(25))
        attach_profile(bundle.topology.node("dtn1"),
                       tuned_dtn("dtn1", RaidArray(
                           name="noaa-raid", disks=8,
                           controller_limit=MBps(420))))
        report = TransferPlan(bundle.topology, bundle.remote_dtn, "dtn1",
                              NOAA_GEFS_SAMPLE,
                              tool_by_name("globus").with_streams(8),
                              policy=bundle.science_policy).execute()
        lo, hi = GOLDEN["noaa_dtn_MBps"]
        assert lo < report.mean_throughput.MBps < hi, \
            f"paper says ~395 MB/s; got {report.mean_throughput.MBps:.0f}"
        mlo, mhi = GOLDEN["noaa_minutes"]
        assert mlo < report.duration.minutes < mhi, \
            f"paper says 'just over 10 minutes'; got " \
            f"{report.duration.minutes:.1f}"

    def test_ftp_rate(self):
        """The §6.3 'before': 1-2 MB/s through the firewall."""
        bundle = general_purpose_campus(wan_rtt=ms(25))
        report = TransferPlan(bundle.topology, bundle.remote_dtn,
                              "lab-server1", NOAA_GEFS_SAMPLE,
                              "ftp").execute(np.random.default_rng(63))
        assert 0.5 < report.mean_throughput.MBps < 5, \
            f"paper says 1-2 MB/s; got {report.mean_throughput.MBps:.1f}"


class TestPennStateGolden:
    def test_gains(self):
        """§6.2: ~5x inbound, ~12x outbound after disabling sequence
        checking — asserted against the bench's exact scenario."""
        import sys
        import pathlib
        sys.path.insert(0, str(pathlib.Path(__file__).parent.parent
                               / "benchmarks"))
        try:
            from bench_fig8_pennstate_firewall import build_psu, measure
        finally:
            sys.path.pop(0)
        broken = build_psu(sequence_checking=True)
        fixed = build_psu(sequence_checking=False)
        in_gain = measure(fixed, "vtti", "coe") / measure(broken, "vtti",
                                                          "coe")
        out_gain = measure(fixed, "coe", "vtti") / measure(broken, "coe",
                                                           "vtti")
        assert in_gain == pytest.approx(5.0, rel=0.25), \
            f"paper says ~5x inbound; got {in_gain:.1f}x"
        assert out_gain == pytest.approx(12.5, rel=0.25), \
            f"paper says ~12x outbound; got {out_gain:.1f}x"

"""Tests for the Science DMZ upgrade planner (the CC-NIE operation)."""

import pytest

from repro.core import (
    apply_upgrade,
    general_purpose_campus,
    plan_upgrade,
    simple_science_dmz,
)
from repro.dtn import Dataset, TransferPlan
from repro.dtn.storage import ParallelFilesystem
from repro.errors import ConfigurationError
from repro.units import GB


class TestPlanUpgrade:
    def test_failing_campus_gets_full_plan(self):
        bundle = general_purpose_campus()
        plan = plan_upgrade(bundle.topology, science_hosts=bundle.dtns,
                            border=bundle.border, wan=bundle.wan)
        assert plan.needed
        kinds = [a.kind for a in plan.actions]
        assert "create-dmz" in kinds
        assert kinds.count("provision-dtn") == len(bundle.dtns)
        assert "deploy-perfsonar" in kinds
        assert "install-acl" in kinds

    def test_passing_design_needs_nothing(self):
        bundle = simple_science_dmz()
        plan = plan_upgrade(bundle.topology, science_hosts=bundle.dtns,
                            border=bundle.border, wan=bundle.wan)
        assert not plan.needed
        assert plan.before.passed

    def test_unknown_host_rejected(self):
        bundle = general_purpose_campus()
        with pytest.raises(ConfigurationError):
            plan_upgrade(bundle.topology, science_hosts=["ghost"],
                         border=bundle.border, wan=bundle.wan)

    def test_render(self):
        bundle = general_purpose_campus()
        plan = plan_upgrade(bundle.topology, science_hosts=bundle.dtns,
                            border=bundle.border, wan=bundle.wan)
        text = plan.render_text()
        assert "create-dmz" in text and "1." in text


class TestApplyUpgrade:
    def test_upgrade_makes_audit_pass(self):
        bundle = general_purpose_campus()
        result = apply_upgrade(bundle.topology, science_hosts=bundle.dtns,
                               border=bundle.border, wan=bundle.wan)
        assert result.successful, result.after.render_text()
        assert not result.plan.before.passed

    def test_enterprise_untouched(self):
        bundle = general_purpose_campus()
        before_path = bundle.topology.path("lab-server1", "wan").node_names()
        apply_upgrade(bundle.topology, science_hosts=bundle.dtns,
                      border=bundle.border, wan=bundle.wan)
        after_path = bundle.topology.path("lab-server1", "wan",
                                          forbid_link_tags=("science",)
                                          ).node_names()
        assert before_path == after_path  # firewall path intact

    def test_new_dtns_are_performant(self):
        bundle = general_purpose_campus()
        result = apply_upgrade(
            bundle.topology, science_hosts=bundle.dtns,
            border=bundle.border, wan=bundle.wan,
            storage_factory=lambda h: ParallelFilesystem(name=f"{h}-pfs"))
        dtn = result.dtn_map["lab-server1"]
        report = TransferPlan(bundle.topology, bundle.remote_dtn, dtn,
                              Dataset("post-upgrade", GB(50), 50),
                              "gridftp",
                              policy={"forbid_node_kinds": ("firewall",)}
                              ).execute()
        assert report.mean_throughput.gbps > 1.0

    def test_upgrade_of_passing_design_rejected(self):
        bundle = simple_science_dmz()
        with pytest.raises(ConfigurationError):
            apply_upgrade(bundle.topology, science_hosts=bundle.dtns,
                          border=bundle.border, wan=bundle.wan)

    def test_result_render(self):
        bundle = general_purpose_campus()
        result = apply_upgrade(bundle.topology, science_hosts=bundle.dtns,
                               border=bundle.border, wan=bundle.wan)
        text = result.render_text()
        assert "PASSES" in text
        assert "lab-server1->lab-server1-dtn" in text

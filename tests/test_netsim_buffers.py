"""Tests for the drop-tail queue model."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.netsim.buffers import DropTailQueue
from repro.units import DataRate, Gbps, KB, MB, Mbps, bytes_


def make_queue(capacity=KB(512), service=Mbps(650)):
    return DropTailQueue(capacity=capacity, service_rate=service)


class TestEventDriven:
    def test_accepts_until_full(self):
        q = DropTailQueue(capacity=bytes_(3000), service_rate=Mbps(1))
        assert q.offer(bytes_(1500), 0.0)
        assert q.offer(bytes_(1500), 0.0)
        assert not q.offer(bytes_(1500), 0.0)
        assert q.stats.dropped_packets == 1
        assert q.stats.enqueued_packets == 2

    def test_drains_over_time(self):
        # 1 Mbps drains 1500 B (12 kbit) in 12 ms.
        q = DropTailQueue(capacity=bytes_(1500), service_rate=Mbps(1))
        assert q.offer(bytes_(1500), 0.0)
        assert not q.offer(bytes_(1500), 0.001)
        assert q.offer(bytes_(1500), 0.013)

    def test_drain_time_monotonic(self):
        q = make_queue()
        q.drain_to(1.0)
        with pytest.raises(ConfigurationError):
            q.drain_to(0.5)

    def test_queueing_delay(self):
        q = DropTailQueue(capacity=MB(1), service_rate=Mbps(8))
        q.offer(bytes_(100_000), 0.0)  # 800 kbit at 8 Mbps = 100 ms
        assert q.queueing_delay().ms == pytest.approx(100.0)

    def test_reset(self):
        q = make_queue()
        q.offer(bytes_(1500), 0.0)
        q.reset()
        assert q.occupancy.bits == 0
        assert q.stats.enqueued_packets == 0

    def test_stats_drop_fraction(self):
        q = DropTailQueue(capacity=bytes_(1500), service_rate=Mbps(0.001))
        q.offer(bytes_(1500), 0.0)
        q.offer(bytes_(1500), 0.0)
        assert q.stats.drop_fraction == pytest.approx(0.5)

    def test_max_occupancy_tracked(self):
        q = DropTailQueue(capacity=bytes_(4500), service_rate=Mbps(0.001))
        q.offer(bytes_(1500), 0.0)
        q.offer(bytes_(1500), 0.0)
        assert q.stats.max_occupancy_bits == pytest.approx(2 * 1500 * 8)


class TestBurstAnalysis:
    def test_small_burst_fits(self):
        q = make_queue(capacity=KB(512))
        assert q.burst_loss_fraction(KB(256), Gbps(10)) == 0.0

    def test_slow_arrival_never_loses(self):
        q = make_queue(capacity=KB(64), service=Gbps(10))
        assert q.burst_loss_fraction(MB(100), Gbps(1)) == 0.0

    def test_large_fast_burst_loses(self):
        q = make_queue(capacity=KB(512), service=Mbps(650))
        loss = q.burst_loss_fraction(MB(4), Gbps(10))
        assert 0.0 < loss < 1.0

    def test_loss_grows_with_burst_size(self):
        q = make_queue(capacity=KB(512), service=Mbps(650))
        losses = [q.burst_loss_fraction(MB(s), Gbps(10)) for s in (1, 2, 4, 8)]
        assert losses == sorted(losses)
        assert losses[-1] > losses[0]

    def test_deeper_buffer_less_loss(self):
        shallow = make_queue(capacity=KB(128)).burst_loss_fraction(MB(2), Gbps(10))
        deep = make_queue(capacity=MB(8)).burst_loss_fraction(MB(2), Gbps(10))
        assert deep < shallow

    def test_initial_occupancy_reduces_headroom(self):
        q = make_queue(capacity=KB(512))
        empty = q.burst_loss_fraction(MB(2), Gbps(10))
        primed = q.burst_loss_fraction(MB(2), Gbps(10),
                                       initial_occupancy=KB(400))
        assert primed > empty

    def test_initial_occupancy_over_capacity_rejected(self):
        q = make_queue(capacity=KB(512))
        with pytest.raises(ConfigurationError):
            q.burst_loss_fraction(MB(1), Gbps(10), initial_occupancy=MB(1))

    def test_sustainable_burst(self):
        q = make_queue(capacity=KB(512), service=Mbps(650))
        burst = q.sustainable_burst(Gbps(10))
        # The sustainable burst incurs zero loss...
        assert q.burst_loss_fraction(burst, Gbps(10)) == pytest.approx(0.0, abs=1e-12)
        # ...and 10% more incurs some.
        assert q.burst_loss_fraction(burst * 1.1, Gbps(10)) > 0

    def test_sustainable_burst_infinite_when_undersubscribed(self):
        q = make_queue(capacity=KB(64), service=Gbps(10))
        assert q.sustainable_burst(Gbps(1)).bits == float("inf")

    @given(
        burst_mb=st.floats(min_value=0.1, max_value=64),
        cap_kb=st.floats(min_value=16, max_value=4096),
        arrival_gbps=st.floats(min_value=0.8, max_value=40),
    )
    def test_loss_fraction_always_valid(self, burst_mb, cap_kb, arrival_gbps):
        q = DropTailQueue(capacity=KB(cap_kb), service_rate=Mbps(650))
        frac = q.burst_loss_fraction(MB(burst_mb), Gbps(arrival_gbps))
        assert 0.0 <= frac < 1.0


class TestValidation:
    def test_zero_service_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            DropTailQueue(capacity=KB(64), service_rate=DataRate(0))

    def test_wrong_types_rejected(self):
        with pytest.raises(ConfigurationError):
            DropTailQueue(capacity=1000, service_rate=Mbps(1))

"""Tests for the mesh scheduler, the Figure 2 dashboard, and alerting."""

import pytest

from repro.devices.faults import FailingLineCard, FaultInjector
from repro.errors import MeasurementError
from repro.netsim import Link, Simulator, Topology
from repro.netsim.node import Router
from repro.perfsonar import (
    AlertRule,
    Dashboard,
    MeasurementArchive,
    MeshConfig,
    MeshSchedule,
    Metric,
    RateBand,
    ThresholdAlerter,
    localize_loss,
)
from repro.units import Gbps, bytes_, minutes, ms


def mesh_fixture(hosts=("lbl", "anl", "bnl"), seed=7):
    topo = Topology("mesh")
    topo.add_node(Router(name="core"))
    for h in hosts:
        topo.add_host(h, nic_rate=Gbps(10), tags={"perfsonar"})
        topo.connect(h, "core", Link(rate=Gbps(10), delay=ms(8),
                                     mtu=bytes_(9000)))
    sim = Simulator(seed=seed)
    arch = MeasurementArchive()
    mesh = MeshSchedule(topo, list(hosts), sim, arch,
                        config=MeshConfig(owamp_interval=minutes(1),
                                          bwctl_interval=minutes(15)))
    return topo, sim, arch, mesh


class TestMesh:
    def test_pair_count(self):
        _, _, _, mesh = mesh_fixture()
        assert mesh.pair_count == 6  # 3 hosts, ordered pairs

    def test_periodic_tests_populate_archive(self):
        _, sim, arch, mesh = mesh_fixture()
        mesh.start()
        sim.run_until(minutes(30).s)
        assert arch.count() > 0
        # Every ordered pair measured loss at least ~29 times.
        times, _ = arch.series("lbl", "anl", Metric.LOSS_RATE)
        assert len(times) >= 25

    def test_bwctl_less_frequent_than_owamp(self):
        _, sim, arch, mesh = mesh_fixture()
        mesh.start()
        sim.run_until(minutes(30).s)
        loss_n = len(arch.series("lbl", "anl", Metric.LOSS_RATE)[0])
        tput_n = len(arch.series("lbl", "anl", Metric.THROUGHPUT_BPS)[0])
        assert loss_n > 5 * tput_n >= 1

    def test_one_shot_rounds(self):
        _, _, arch, mesh = mesh_fixture()
        mesh.run_owamp_round()
        mesh.run_bwctl_round()
        assert len(arch.pairs(Metric.LOSS_RATE)) == 6
        assert len(arch.pairs(Metric.THROUGHPUT_BPS)) == 6

    def test_double_start_rejected(self):
        _, _, _, mesh = mesh_fixture()
        mesh.start()
        with pytest.raises(MeasurementError):
            mesh.start()

    def test_validation(self):
        topo, sim, arch, _ = mesh_fixture()
        with pytest.raises(MeasurementError):
            MeshSchedule(topo, ["lbl"], sim, arch)
        with pytest.raises(MeasurementError):
            MeshSchedule(topo, ["lbl", "lbl"], sim, arch)
        with pytest.raises(MeasurementError):
            MeshSchedule(topo, ["lbl", "ghost"], sim, arch)


class TestDashboard:
    def test_grid_shape(self):
        _, _, arch, mesh = mesh_fixture()
        mesh.run_bwctl_round()
        dash = Dashboard(arch, ["lbl", "anl", "bnl"], expected_rate=Gbps(3))
        grid = dash.grid()
        assert len(grid) == 3 and len(grid[0]) == 3
        assert grid[0][0] is None  # diagonal
        assert grid[0][1] is not None

    def test_banding(self):
        arch = MeasurementArchive()
        dash = Dashboard(arch, ["a", "b"], expected_rate=Gbps(10))
        assert dash.band(9.5e9) is RateBand.GOOD
        assert dash.band(5e9) is RateBand.DEGRADED
        assert dash.band(0.5e9) is RateBand.BAD
        assert dash.band(None) is RateBand.NO_DATA

    def test_cell_is_bidirectional(self):
        arch = MeasurementArchive()
        arch.record_value(0.0, "a", "b", Metric.THROUGHPUT_BPS, 9.5e9)
        arch.record_value(0.0, "b", "a", Metric.THROUGHPUT_BPS, 0.2e9)
        dash = Dashboard(arch, ["a", "b"], expected_rate=Gbps(10))
        cell = dash.cell("a", "b")
        assert cell.forward_band is RateBand.GOOD
        assert cell.reverse_band is RateBand.BAD
        assert cell.glyphs == "#X"

    def test_problem_pairs(self):
        arch = MeasurementArchive()
        arch.record_value(0.0, "a", "b", Metric.THROUGHPUT_BPS, 9.5e9)
        arch.record_value(0.0, "b", "a", Metric.THROUGHPUT_BPS, 0.2e9)
        dash = Dashboard(arch, ["a", "b"], expected_rate=Gbps(10))
        problems = dash.problem_pairs()
        assert ("b", "a", RateBand.BAD) in problems
        assert all(p[0] != "a" for p in problems)

    def test_render_text_and_csv(self):
        _, _, arch, mesh = mesh_fixture()
        mesh.run_bwctl_round()
        dash = Dashboard(arch, ["lbl", "anl", "bnl"], expected_rate=Gbps(3))
        text = dash.render_text()
        assert "legend" in text and "lbl" in text
        csv = dash.render_csv()
        assert csv.startswith("src,dst,")
        assert len(csv.strip().split("\n")) == 1 + 6

    def test_validation(self):
        arch = MeasurementArchive()
        with pytest.raises(MeasurementError):
            Dashboard(arch, ["only-one"])
        with pytest.raises(MeasurementError):
            Dashboard(arch, ["a", "b"], good_fraction=0.1, bad_fraction=0.5)


class TestAlerting:
    def test_loss_alert_raised(self):
        arch = MeasurementArchive()
        arch.record_value(60.0, "a", "b", Metric.LOSS_RATE, 0.0)
        arch.record_value(120.0, "a", "b", Metric.LOSS_RATE, 0.002)
        alerts = ThresholdAlerter(arch).scan()
        assert len(alerts) == 1
        assert alerts[0].time == 120.0
        assert alerts[0].metric is Metric.LOSS_RATE

    def test_throughput_drop_alert(self):
        arch = MeasurementArchive()
        for t in range(5):
            arch.record_value(t * 60.0, "a", "b", Metric.THROUGHPUT_BPS, 9e9)
        arch.record_value(300.0, "a", "b", Metric.THROUGHPUT_BPS, 1e9)
        alerts = ThresholdAlerter(arch).scan()
        assert any(a.metric is Metric.THROUGHPUT_BPS for a in alerts)

    def test_no_alert_without_baseline(self):
        arch = MeasurementArchive()
        arch.record_value(0.0, "a", "b", Metric.THROUGHPUT_BPS, 1e9)
        assert ThresholdAlerter(arch).scan() == []

    def test_first_detection(self):
        arch = MeasurementArchive()
        arch.record_value(60.0, "a", "b", Metric.LOSS_RATE, 0.002)
        arch.record_value(120.0, "a", "b", Metric.LOSS_RATE, 0.002)
        alert = ThresholdAlerter(arch).first_detection("a", "b")
        assert alert.time == 60.0
        assert ThresholdAlerter(arch).first_detection("x", "y") is None

    def test_rule_validation(self):
        with pytest.raises(MeasurementError):
            AlertRule(loss_rate_threshold=0.0)
        with pytest.raises(MeasurementError):
            AlertRule(throughput_drop_fraction=1.0)

    def test_detection_time_after_injection(self):
        """Integration: inject the §2 line card, measure time-to-detect.

        At 1/22000 loss, most 600-packet OWAMP sessions see zero losses
        (binomial mean 0.027), so use a heavier probe stream to make
        detection statistically prompt — the real toolkit streams
        continuously for the same reason.
        """
        topo = Topology("mesh")
        topo.add_node(Router(name="core"))
        for h in ("lbl", "anl", "bnl"):
            topo.add_host(h, nic_rate=Gbps(10), tags={"perfsonar"})
            topo.connect(h, "core", Link(rate=Gbps(10), delay=ms(8),
                                         mtu=bytes_(9000)))
        sim = Simulator(seed=3)
        arch = MeasurementArchive()
        mesh = MeshSchedule(topo, ["lbl", "anl", "bnl"], sim, arch,
                            config=MeshConfig(owamp_interval=minutes(1),
                                              bwctl_interval=minutes(15),
                                              owamp_packets=6000))
        mesh.start()
        injector = FaultInjector(sim)
        injector.inject_at(minutes(20), topo.node("core"), FailingLineCard())
        sim.run_until(minutes(50).s)
        alerter = ThresholdAlerter(arch, AlertRule(loss_rate_threshold=1e-5))
        alerts = alerter.scan()
        assert alerts, "injected fault must be detected"
        first = min(a.time for a in alerts)
        assert first >= minutes(20).s
        # Detected within a handful of OWAMP cycles.
        assert first <= minutes(30).s


class TestLocalization:
    def test_culprit_element_identified(self):
        topo = Topology("loc")
        topo.add_host("a", nic_rate=Gbps(10))
        topo.add_host("b", nic_rate=Gbps(10))
        for name in ("r1", "r2", "r3"):
            topo.add_node(Router(name=name))
        topo.connect("a", "r1", Link(rate=Gbps(10), delay=ms(1)))
        topo.connect("r1", "r2", Link(rate=Gbps(10), delay=ms(1)))
        topo.connect("r2", "r3", Link(rate=Gbps(10), delay=ms(1)))
        topo.connect("r3", "b", Link(rate=Gbps(10), delay=ms(1)))
        topo.node("r2").attach(FailingLineCard())
        culprits = localize_loss(topo, topo.path("a", "b"))
        assert len(culprits) == 1
        assert "r2" in culprits[0][0]
        assert culprits[0][1] == pytest.approx(1 / 22000)

    def test_clean_path_no_culprits(self, clean_path_topology):
        path = clean_path_topology.path("a", "b")
        assert localize_loss(clean_path_topology, path) == []

    def test_multiple_culprits_sorted_by_severity(self):
        topo = Topology("loc2")
        topo.add_host("a", nic_rate=Gbps(10))
        topo.add_host("b", nic_rate=Gbps(10))
        topo.add_node(Router(name="r1"))
        topo.connect("a", "r1", Link(rate=Gbps(10), delay=ms(1),
                                     loss_probability=0.001))
        topo.connect("r1", "b", Link(rate=Gbps(10), delay=ms(1),
                                     loss_probability=0.05))
        culprits = localize_loss(topo, topo.path("a", "b"))
        assert len(culprits) == 2
        assert culprits[0][1] > culprits[1][1]

"""Bit-identity of the vectorized kernels against the scalar references.

The three hot paths (multi-flow fluid loop, fan-in Lindley sweep,
max-min fair allocation) each ship a numpy kernel and a scalar Python
reference behind ``backend=``.  The contract is *bit*-identity, not
approximate equality: goldens were recorded against the scalar code, so
any last-bit divergence in the vectorized path would silently shift
reproduced numbers.  These property tests drive both backends over
randomized topologies, flow mixes, seeds, and loss regimes and compare
raw float bit patterns (``tobytes()`` / exact ``==``).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.netsim import Link, Topology
from repro.netsim.flow import FlowSpec
from repro.netsim.packetsim import BurstySource, simulate_fan_in
from repro.tcp.congestion import Cubic, HTcp, Reno
from repro.tcp.simulate import (
    MultiFlowSimulation,
    SIM_BACKENDS,
    max_min_fair_allocation,
)
from repro.units import Gbps, KB, MB, Mbps, bytes_, ms, seconds

# Property tests run both backends per example; keep example counts
# modest so tier-1 stays fast.  deadline=None: the simulation examples
# legitimately take tens of milliseconds each.
SETTINGS = settings(max_examples=25, deadline=None)
SIM_SETTINGS = settings(max_examples=12, deadline=None)


# -- max-min fair allocation --------------------------------------------------

@st.composite
def allocation_problems(draw):
    n_flows = draw(st.integers(1, 12))
    n_links = draw(st.integers(1, 8))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    usage = rng.random((n_flows, n_links)) < draw(
        st.floats(0.1, 0.9, allow_nan=False))
    demands = rng.random(n_flows) * draw(st.floats(0.5, 200.0))
    if draw(st.booleans()):
        demands[rng.integers(0, n_flows)] = np.inf
    capacities = rng.random(n_links) * draw(st.floats(0.5, 100.0)) + 1e-3
    if draw(st.booleans()):
        capacities[rng.integers(0, n_links)] = np.inf
    return demands, usage, capacities


@SETTINGS
@given(allocation_problems())
def test_max_min_backends_bit_identical(problem):
    demands, usage, capacities = problem
    a = max_min_fair_allocation(demands, usage, capacities, backend="numpy")
    b = max_min_fair_allocation(demands, usage, capacities, backend="python")
    assert a.tobytes() == b.tobytes()


def test_max_min_rejects_unknown_backend():
    with pytest.raises(ConfigurationError, match="backend"):
        max_min_fair_allocation(np.ones(2), np.ones((2, 1), dtype=bool),
                                np.ones(1), backend="fortran")


# -- fan-in Lindley sweep -----------------------------------------------------

@st.composite
def fanin_problems(draw):
    n_sources = draw(st.integers(1, 5))
    mean_mbps = draw(st.integers(100, 900))
    egress_gbps = draw(st.floats(0.2, 4.0, allow_nan=False))
    buffer_kb = draw(st.integers(16, 1024))
    duration_ms = draw(st.integers(20, 250))
    seed = draw(st.integers(0, 2**31 - 1))
    return n_sources, mean_mbps, egress_gbps, buffer_kb, duration_ms, seed


def _run_fanin(backend, n_sources, mean_mbps, egress_gbps, buffer_kb,
               duration_ms, seed):
    sources = [BurstySource(name=f"s{i}", line_rate=Gbps(1),
                            mean_rate=Mbps(mean_mbps), burst_size=KB(128))
               for i in range(n_sources)]
    return simulate_fan_in(sources, egress_rate=Gbps(egress_gbps),
                           buffer_size=KB(buffer_kb),
                           duration=seconds(duration_ms / 1e3),
                           rng=np.random.default_rng(seed), backend=backend)


@SETTINGS
@given(fanin_problems())
def test_fanin_backends_bit_identical(problem):
    a = _run_fanin("numpy", *problem)
    b = _run_fanin("python", *problem)
    assert a.total_offered == b.total_offered
    assert a.total_delivered == b.total_delivered
    assert a.total_dropped == b.total_dropped
    assert a.max_queue_occupancy.bits == b.max_queue_occupancy.bits
    assert set(a.per_source) == set(b.per_source)
    for name in a.per_source:
        sa, sb = a.per_source[name], b.per_source[name]
        assert (sa.offered_packets, sa.delivered_packets,
                sa.dropped_packets) == \
               (sb.offered_packets, sb.delivered_packets,
                sb.dropped_packets)


def test_fanin_rejects_unknown_backend():
    src = [BurstySource(name="s", line_rate=Gbps(1), mean_rate=Mbps(100),
                        burst_size=KB(64))]
    with pytest.raises(ConfigurationError, match="backend"):
        simulate_fan_in(src, egress_rate=Gbps(1), buffer_size=KB(64),
                        duration=seconds(0.01),
                        rng=np.random.default_rng(0), backend="jax")


# -- multi-flow fluid simulation ----------------------------------------------

ALGORITHMS = [None, Reno(), Cubic(), HTcp()]


@st.composite
def simulation_problems(draw):
    n_hosts = draw(st.integers(2, 4))
    seed = draw(st.integers(0, 2**31 - 1))
    loss_scale = draw(st.sampled_from([0.0, 1e-5, 1e-4]))
    algo_idx = draw(st.integers(0, len(ALGORITHMS) - 1))
    flows = []
    n_flows = draw(st.integers(1, 3))
    for i in range(n_flows):
        src = draw(st.integers(0, n_hosts - 1))
        dst = draw(st.integers(0, n_hosts - 1).filter(lambda d: d != src))
        flows.append({
            "src": src,
            "dst": dst,
            "mb": draw(st.integers(5, 120)),
            "streams": draw(st.integers(1, 4)),
            "start_ms": draw(st.sampled_from([0, 250, 1000])),
            "unbounded": draw(st.booleans()),
        })
    return n_hosts, seed, loss_scale, algo_idx, flows


def _build_sim(backend, n_hosts, seed, loss_scale, algo_idx, flows):
    topo = Topology("equiv-star")
    from repro.netsim.node import Router
    topo.add_node(Router(name="hub"))
    for i in range(n_hosts):
        topo.add_host(f"h{i}", nic_rate=Gbps(10))
        topo.connect(f"h{i}", "hub",
                     Link(rate=Gbps(2 + i), delay=ms(1 + 3 * i),
                          mtu=bytes_(9000),
                          loss_probability=loss_scale * (i + 1)))
    specs = []
    for i, f in enumerate(flows):
        specs.append(FlowSpec(
            src=f"h{f['src']}", dst=f"h{f['dst']}",
            size=None if f["unbounded"] else MB(f["mb"]),
            start=seconds(f["start_ms"] / 1e3),
            parallel_streams=f["streams"], label=f"f{i}"))
    return MultiFlowSimulation(topo, specs,
                               rng=np.random.default_rng(seed),
                               algorithm=ALGORITHMS[algo_idx],
                               backend=backend)


def _state_fingerprint(sim, progresses):
    state = {"queues": sim._queues.tobytes(),
             "finished_at": None if sim.finished_at is None
             else sim.finished_at.s}
    for label, prog in sorted(progresses.items()):
        state[label] = (
            prog.delivered.bits,
            None if prog.finish_time is None else prog.finish_time.s,
            prog.loss_events,
            prog.started,
            tuple(prog.time_series),
        )
    flat = [st_ for flow_streams in sim._streams for st_ in flow_streams]
    for i, st_ in enumerate(flat):
        state[f"stream{i}"] = (st_.cwnd, st_.ssthresh, st_.time_since_loss,
                               st_.rtt_clock, st_.loss_flag,
                               st_.delivered_bits, st_.remaining_bits)
    return state


@SIM_SETTINGS
@given(simulation_problems())
def test_multiflow_backends_bit_identical(problem):
    states = {}
    for backend in SIM_BACKENDS:
        sim = _build_sim(backend, *problem)
        out = sim.run(until=seconds(4))
        states[backend] = _state_fingerprint(sim, out)
    assert states["numpy"] == states["python"]


def test_multiflow_rejects_unknown_backend():
    with pytest.raises(ConfigurationError, match="backend"):
        _build_sim("cython", 2, 0, 0.0, 0,
                   [{"src": 0, "dst": 1, "mb": 5, "streams": 1,
                     "start_ms": 0, "unbounded": False}])


def test_final_tick_rate_recorded_on_finish():
    """A flow finishing mid-interval records its final-tick rate at the
    finish time on both backends (the time_series regression fix)."""
    for backend in SIM_BACKENDS:
        sim = _build_sim(backend, 2, 5, 0.0, 1,
                         [{"src": 0, "dst": 1, "mb": 20, "streams": 2,
                           "start_ms": 0, "unbounded": False}])
        prog = sim.run(until=seconds(10))["f0"]
        assert prog.done and prog.finish_time is not None
        last_t, last_rate = prog.time_series[-1]
        assert last_t == pytest.approx(prog.finish_time.s)
        assert last_rate > 0.0

"""FairQueue: bounded admission, priority classes, weighted fairness.

The queue is the service's entire scheduling policy, so its promised
properties get direct unit coverage: strict priority preemption, 1:1
interleave of equal-weight tenants (no burst starvation), ~2:1 service
for a weight-2 tenant, FIFO degeneration for a lone tenant, explicit
AdmissionError backpressure with a Retry-After hint, and the
drain/close lifecycle the graceful-shutdown path relies on.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import AdmissionError, ConfigurationError
from repro.serve import FairQueue


def fill(queue, jobs):
    """jobs = [(item, tenant, priority), ...]"""
    for item, tenant, priority in jobs:
        queue.push(item, tenant=tenant, priority=priority)


def drain_items(queue):
    out = []
    while True:
        item = queue.pop(timeout=0)
        if item is None:
            return out
        out.append(item)


class TestOrdering:
    def test_single_tenant_is_fifo(self):
        q = FairQueue(16)
        fill(q, [(i, "a", "normal") for i in range(8)])
        assert drain_items(q) == list(range(8))

    def test_priority_class_preempts(self):
        q = FairQueue(16)
        fill(q, [("batch-0", "a", "batch"),
                 ("normal-0", "a", "normal"),
                 ("interactive-0", "b", "interactive"),
                 ("batch-1", "a", "batch")])
        assert drain_items(q) == [
            "interactive-0", "normal-0", "batch-0", "batch-1"]

    def test_equal_weights_interleave_despite_burst(self):
        """A tenant that dumps 6 jobs cannot starve one that submits
        afterwards: the late tenant's first job is served second."""
        q = FairQueue(32)
        fill(q, [(f"a{i}", "a", "normal") for i in range(6)])
        fill(q, [(f"b{i}", "b", "normal") for i in range(2)])
        order = drain_items(q)
        # a0 entered first, but b0 must come before a2.
        assert order.index("b0") < order.index("a2")
        assert order.index("b1") < order.index("a3")

    def test_weighted_tenant_gets_proportional_share(self):
        q = FairQueue(64, tenant_weights={"heavy": 2.0})
        fill(q, [(f"h{i}", "heavy", "normal") for i in range(8)])
        fill(q, [(f"l{i}", "light", "normal") for i in range(8)])
        first_six = drain_items(q)[:6]
        heavy = sum(1 for x in first_six if x.startswith("h"))
        light = sum(1 for x in first_six if x.startswith("l"))
        assert heavy == 4 and light == 2  # 2:1 service ratio

    def test_fairness_is_per_priority_class(self):
        q = FairQueue(16)
        fill(q, [("a-batch", "a", "batch"),
                 ("b-normal", "b", "normal"),
                 ("a-normal", "a", "normal")])
        assert drain_items(q) == ["b-normal", "a-normal", "a-batch"]


class TestAdmission:
    def test_capacity_overflow_raises_admission_error(self):
        q = FairQueue(2)
        fill(q, [(1, "a", "normal"), (2, "a", "normal")])
        with pytest.raises(AdmissionError) as exc:
            q.push(3, tenant="a")
        assert exc.value.retry_after_s > 0
        assert "full" in str(exc.value)

    def test_retry_after_scales_with_depth_and_workers(self):
        q = FairQueue(100)
        q.observe_service_time(2.0)
        fill(q, [(i, "a", "normal") for i in range(10)])
        assert q.retry_after_s(workers=1) > q.retry_after_s(workers=8)

    def test_unknown_priority_rejected(self):
        q = FairQueue(4)
        with pytest.raises(ConfigurationError, match="unknown priority"):
            q.push(1, tenant="a", priority="urgent")
        with pytest.raises(ConfigurationError, match="interactive"):
            q.push(1, tenant="a", priority="urgent")

    def test_bad_capacity_and_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            FairQueue(0)
        with pytest.raises(ConfigurationError):
            FairQueue(4, tenant_weights={"a": 0})
        q = FairQueue(4)
        with pytest.raises(ConfigurationError):
            q.set_weight("a", -1)


class TestLifecycle:
    def test_drain_returns_fair_order_and_empties(self):
        q = FairQueue(16)
        fill(q, [("n", "a", "normal"), ("i", "a", "interactive")])
        assert q.drain() == ["i", "n"]
        assert len(q) == 0
        assert q.drain() == []

    def test_close_wakes_blocked_popper(self):
        q = FairQueue(4)
        got = []
        thread = threading.Thread(
            target=lambda: got.append(q.pop(timeout=30)))
        thread.start()
        q.close()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert got == [None]

    def test_closed_queue_still_drains_backlog_then_none(self):
        q = FairQueue(4)
        q.push(1, tenant="a")
        q.close()
        assert q.pop(timeout=0) == 1
        assert q.pop(timeout=0) is None

    def test_reopen_after_close(self):
        q = FairQueue(4)
        q.close()
        q.reopen()
        q.push(1, tenant="a")
        assert q.pop(timeout=0) == 1

    def test_pop_timeout_returns_none(self):
        q = FairQueue(4)
        assert q.pop(timeout=0.01) is None

"""Tests for latency-rise alerting and lossless-soft-failure detection."""

import pytest

from repro.devices.faults import FaultInjector, ManagementCpuForwarding
from repro.errors import MeasurementError
from repro.netsim import Link, Simulator, Topology
from repro.netsim.node import Router
from repro.perfsonar import (
    AlertRule,
    MeasurementArchive,
    MeshConfig,
    MeshSchedule,
    Metric,
    ThresholdAlerter,
)
from repro.units import Gbps, bytes_, minutes, ms


class TestLatencyAlertRule:
    def test_latency_rise_alert(self):
        arch = MeasurementArchive()
        for t in range(5):
            arch.record_value(t * 60.0, "a", "b",
                              Metric.ONE_WAY_LATENCY_S, 0.010)
        arch.record_value(300.0, "a", "b", Metric.ONE_WAY_LATENCY_S, 0.020)
        alerts = ThresholdAlerter(arch).scan()
        latency_alerts = [a for a in alerts
                          if a.metric is Metric.ONE_WAY_LATENCY_S]
        assert len(latency_alerts) == 1
        assert latency_alerts[0].time == 300.0

    def test_small_jitter_does_not_alert(self):
        arch = MeasurementArchive()
        for t, v in enumerate([0.010, 0.0101, 0.0099, 0.0102, 0.0100]):
            arch.record_value(t * 60.0, "a", "b",
                              Metric.ONE_WAY_LATENCY_S, v)
        alerts = [a for a in ThresholdAlerter(arch).scan()
                  if a.metric is Metric.ONE_WAY_LATENCY_S]
        assert alerts == []

    def test_rule_validation(self):
        with pytest.raises(MeasurementError):
            AlertRule(latency_rise_fraction=0.0)


class TestSlowPathDetection:
    """Management-CPU forwarding adds delay but no loss (§3.3) — only the
    latency rule catches it."""

    def test_detected_by_latency_not_loss(self):
        topo = Topology("slowpath")
        topo.add_host("a", nic_rate=Gbps(10), tags={"perfsonar"})
        topo.add_host("b", nic_rate=Gbps(10), tags={"perfsonar"})
        core = topo.add_node(Router(name="core"))
        topo.connect("a", "core", Link(rate=Gbps(10), delay=ms(1),
                                       mtu=bytes_(9000)))
        topo.connect("core", "b", Link(rate=Gbps(10), delay=ms(1),
                                       mtu=bytes_(9000)))
        sim = Simulator(seed=13)
        arch = MeasurementArchive()
        mesh = MeshSchedule(topo, ["a", "b"], sim, arch,
                            config=MeshConfig(owamp_interval=minutes(1),
                                              bwctl_interval=minutes(60)))
        mesh.start()
        injector = FaultInjector(sim)
        injector.inject_at(minutes(15), core, ManagementCpuForwarding())
        sim.run_until(minutes(30).s)

        alerts = ThresholdAlerter(arch).scan()
        latency_alerts = [a for a in alerts
                          if a.metric is Metric.ONE_WAY_LATENCY_S]
        loss_alerts = [a for a in alerts if a.metric is Metric.LOSS_RATE]
        assert latency_alerts, "slow-path fault must raise a latency alert"
        assert min(a.time for a in latency_alerts) >= minutes(15).s
        assert loss_alerts == []  # the fault drops nothing

"""The perf-regression harness: scenarios, comparison logic, CLI gate."""

from __future__ import annotations

import json

import pytest

from repro import bench
from repro.cli import main
from repro.errors import ConfigurationError, ReproError


def _payload(results, calibration=0.02, quick=False):
    return {"schema": bench.SCHEMA_VERSION, "quick": quick,
            "repeats": 3, "calibration": calibration, "results": results}


class TestCompare:
    def test_unchanged_is_ok(self):
        base = _payload({"a": 1.0, "b": 0.5})
        rows = bench.compare(_payload({"a": 1.0, "b": 0.5}), base)
        assert [r["regressed"] for r in rows] == [False, False]
        assert all(r["ratio"] == pytest.approx(1.0) for r in rows)

    def test_slowdown_beyond_tolerance_regresses(self):
        base = _payload({"a": 1.0})
        rows = bench.compare(_payload({"a": 1.4}), base, tolerance=0.30)
        assert rows[0]["regressed"] and rows[0]["ratio"] == pytest.approx(1.4)
        rows = bench.compare(_payload({"a": 1.2}), base, tolerance=0.30)
        assert not rows[0]["regressed"]

    def test_calibration_normalizes_machine_speed(self):
        # Current machine is 2x slower overall (calibration 0.04 vs
        # 0.02); a scenario that also doubled is *not* a regression.
        base = _payload({"a": 1.0}, calibration=0.02)
        cur = _payload({"a": 2.0}, calibration=0.04)
        rows = bench.compare(cur, base)
        assert rows[0]["ratio"] == pytest.approx(1.0)
        assert not rows[0]["regressed"]

    def test_speedup_passes(self):
        rows = bench.compare(_payload({"a": 0.2}), _payload({"a": 1.0}))
        assert not rows[0]["regressed"]

    def test_disjoint_scenarios_skipped(self):
        rows = bench.compare(_payload({"new": 1.0}), _payload({"old": 1.0}))
        assert rows == []

    def test_quick_full_mismatch_rejected(self):
        with pytest.raises(ReproError, match="quick"):
            bench.compare(_payload({"a": 1.0}, quick=True),
                          _payload({"a": 1.0}))

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ConfigurationError, match="tolerance"):
            bench.compare(_payload({}), _payload({}), tolerance=-0.1)


class TestBaselineIO:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "baseline.json"
        payload = _payload({"a": 1.0})
        bench.write_json(payload, str(path))
        assert bench.load_baseline(str(path)) == payload

    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError, match="cannot read"):
            bench.load_baseline(str(tmp_path / "nope.json"))

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ReproError, match="not valid JSON"):
            bench.load_baseline(str(path))

    def test_wrong_schema(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"schema": 99, "results": {}}))
        with pytest.raises(ReproError, match="schema"):
            bench.load_baseline(str(path))


class TestScenarios:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown bench"):
            bench.run_scenario("nope")
        with pytest.raises(ConfigurationError, match="unknown bench"):
            bench.run_suite(["maxmin.numpy", "nope"])

    def test_registry_covers_both_backends(self):
        for family in ("multiflow", "fanin", "maxmin"):
            assert f"{family}.numpy" in bench.SCENARIOS
            assert f"{family}.python" in bench.SCENARIOS

    def test_run_scenario_times_quick_workload(self):
        result = bench.run_scenario("maxmin.numpy", repeats=1, quick=True)
        assert result["seconds"] > 0.0

    def test_run_suite_payload_shape(self):
        payload = bench.run_suite(["maxmin.numpy"], repeats=1, quick=True)
        assert payload["schema"] == bench.SCHEMA_VERSION
        assert payload["quick"] is True
        assert set(payload["results"]) == {"maxmin.numpy"}
        assert payload["calibration"] > 0.0


class TestCli:
    def test_bench_write_then_compare_ok(self, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        assert main(["bench", "--quick", "--repeats", "1",
                     "--only", "maxmin.numpy",
                     "--write-baseline", str(baseline)]) == 0
        assert baseline.exists()
        assert main(["bench", "--quick", "--repeats", "1",
                     "--only", "maxmin.numpy",
                     "--compare", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "maxmin.numpy" in out and "ok" in out

    def test_bench_compare_fails_on_regression(self, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        # A fabricated baseline claiming the scenario once took ~0s
        # normalized: any real run is a >30% regression against it.
        bench.write_json(_payload({"maxmin.numpy": 1e-9},
                                  calibration=10.0, quick=True),
                         str(baseline))
        assert main(["bench", "--quick", "--repeats", "1",
                     "--only", "maxmin.numpy",
                     "--compare", str(baseline)]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_bench_compare_bad_baseline_is_cli_error(self, tmp_path):
        assert main(["bench", "--quick", "--repeats", "1",
                     "--only", "maxmin.numpy",
                     "--compare", str(tmp_path / "missing.json")]) == 2

    def test_bench_out_writes_results(self, tmp_path):
        out = tmp_path / "run.json"
        assert main(["bench", "--quick", "--repeats", "1",
                     "--only", "maxmin.numpy", "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert "maxmin.numpy" in payload["results"]

"""Tests for congestion-control algorithms."""

import pytest

from repro.errors import ConfigurationError
from repro.tcp.congestion import (
    CongestionControl,
    Cubic,
    HTcp,
    LossFreeIdeal,
    Reno,
    algorithm_by_name,
    register_algorithm,
)


class TestReno:
    def test_additive_increase_is_one(self):
        reno = Reno()
        assert reno.increase(100.0, 5.0, 0.05) == 1.0
        assert reno.increase(10000.0, 500.0, 0.05) == 1.0

    def test_halves_on_loss(self):
        reno = Reno()
        assert reno.on_loss(100.0, 0.05, 0.05) == 50.0

    def test_floor_of_one_segment(self):
        reno = Reno()
        assert reno.on_loss(1.0, 0.05, 0.05) == 1.0


class TestHTcp:
    def test_reno_compatible_in_low_speed_regime(self):
        htcp = HTcp()
        assert htcp.increase(100.0, 0.5, 0.05) == 1.0

    def test_aggressive_after_delta_l(self):
        htcp = HTcp()
        # At 3 s since loss: 1 + 10*2 + (2/2)^2 = 22.
        assert htcp.increase(100.0, 3.0, 0.05) == pytest.approx(22.0)

    def test_increase_grows_with_time(self):
        htcp = HTcp()
        values = [htcp.increase(100.0, t, 0.05) for t in (1.0, 2.0, 5.0, 10.0)]
        assert values == sorted(values)
        assert values[-1] > values[0]

    def test_beta_adapts_to_rtt_ratio(self):
        htcp = HTcp()
        # Stable RTT -> gentle 0.8 backoff.
        assert htcp.decrease_factor(100.0, 0.05, 0.05) == pytest.approx(0.8)
        # Heavy queueing (rtt_max >> rtt_min) -> Reno-like 0.5.
        assert htcp.decrease_factor(100.0, 0.01, 0.1) == pytest.approx(0.5)

    def test_faster_than_reno_at_high_bdp(self):
        # The Figure 1 separation: after 10 s loss-free, H-TCP's per-RTT
        # increase dwarfs Reno's.
        assert HTcp().increase(1000, 10.0, 0.05) > 50 * Reno().increase(
            1000, 10.0, 0.05)


class TestCubic:
    def test_decrease_factor(self):
        assert Cubic().decrease_factor(100.0, 0.05, 0.05) == pytest.approx(0.7)

    def test_increase_at_least_reno(self):
        cubic = Cubic()
        for t in (0.0, 0.5, 2.0, 10.0):
            assert cubic.increase(100.0, t, 0.05) >= 1.0

    def test_growth_accelerates_far_from_loss(self):
        cubic = Cubic()
        near = cubic.increase(1000.0, 1.0, 0.05)
        far = cubic.increase(1000.0, 30.0, 0.05)
        assert far > near


class TestLossFreeIdeal:
    def test_exponential_growth(self):
        ideal = LossFreeIdeal()
        assert ideal.increase(100.0, 1.0, 0.05) == pytest.approx(50.0)

    def test_still_backs_off_if_loss_happens(self):
        assert LossFreeIdeal().on_loss(100.0, 0.05, 0.05) == 50.0


class TestRegistry:
    def test_lookup_by_name(self):
        assert isinstance(algorithm_by_name("reno"), Reno)
        assert isinstance(algorithm_by_name("htcp"), HTcp)
        assert isinstance(algorithm_by_name("cubic"), Cubic)
        assert isinstance(algorithm_by_name("ideal"), LossFreeIdeal)

    def test_lookup_case_insensitive(self):
        assert isinstance(algorithm_by_name("HTCP"), HTcp)

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            algorithm_by_name("bbr2-experimental")

    def test_register_custom(self):
        class Gentle(CongestionControl):
            name = "gentle-test"

            def increase(self, cwnd, tsl, rtt):
                return 0.5

            def decrease_factor(self, cwnd, rtt_min, rtt_max):
                return 0.9

        register_algorithm(Gentle)
        assert isinstance(algorithm_by_name("gentle-test"), Gentle)

    def test_register_requires_name(self):
        class Nameless(CongestionControl):
            name = "abstract"

            def increase(self, cwnd, tsl, rtt):
                return 1.0

            def decrease_factor(self, cwnd, rtt_min, rtt_max):
                return 0.5

        with pytest.raises(ConfigurationError):
            register_algorithm(Nameless)

    def test_on_loss_validates_beta(self):
        class Broken(CongestionControl):
            name = "broken-test"

            def increase(self, cwnd, tsl, rtt):
                return 1.0

            def decrease_factor(self, cwnd, rtt_min, rtt_max):
                return 1.5

        with pytest.raises(ConfigurationError):
            Broken().on_loss(100.0, 0.05, 0.05)

"""Tests for the exception hierarchy and small cross-cutting behaviours."""

import pytest

from repro.errors import (
    AuditError,
    CapacityError,
    ConfigurationError,
    MeasurementError,
    ReproError,
    RoutingError,
    SecurityPolicyError,
    SimulationError,
    TopologyError,
    TransferError,
    UnitError,
)


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        for cls in (UnitError, ConfigurationError, TopologyError,
                    RoutingError, SimulationError, CapacityError,
                    SecurityPolicyError, TransferError, MeasurementError,
                    AuditError):
            assert issubclass(cls, ReproError)

    def test_routing_is_a_topology_error(self):
        assert issubclass(RoutingError, TopologyError)

    def test_value_error_compatibility(self):
        # Unit and configuration mistakes should be catchable as
        # ValueError by generic callers.
        assert issubclass(UnitError, ValueError)
        assert issubclass(ConfigurationError, ValueError)

    def test_catching_base_catches_all(self):
        from repro.units import DataSize
        with pytest.raises(ReproError):
            DataSize(-1)


class TestPublicApiSurface:
    def test_top_level_imports(self):
        import repro
        assert repro.__version__
        assert repro.ReproError is ReproError

    def test_subpackage_all_exports_exist(self):
        import repro.circuits
        import repro.core
        import repro.devices
        import repro.dtn
        import repro.netsim
        import repro.perfsonar
        import repro.tcp
        import repro.workloads
        import repro.analysis
        for module in (repro.circuits, repro.core, repro.devices, repro.dtn,
                       repro.netsim, repro.perfsonar, repro.tcp,
                       repro.workloads, repro.analysis):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_docstrings_on_public_classes(self):
        """Every public item exported by a subpackage carries a docstring."""
        import inspect

        import repro.circuits
        import repro.core
        import repro.devices
        import repro.dtn
        import repro.netsim
        import repro.perfsonar
        import repro.tcp
        import repro.workloads
        missing = []
        for module in (repro.circuits, repro.core, repro.devices, repro.dtn,
                       repro.netsim, repro.perfsonar, repro.tcp,
                       repro.workloads):
            for name in module.__all__:
                obj = getattr(module, name)
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not (obj.__doc__ or "").strip():
                        missing.append(f"{module.__name__}.{name}")
        assert not missing, f"undocumented public items: {missing}"

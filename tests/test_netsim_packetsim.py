"""Tests for the packet-level burst/fan-in simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.netsim.packetsim import (
    BurstySource,
    burst_trace,
    generate_arrivals,
    simulate_fan_in,
)
from repro.units import Gbps, KB, MB, Mbps, bytes_, seconds


def source(name="s", mean=Mbps(200), line=Gbps(1), burst=KB(64),
           jitter=0.5):
    return BurstySource(name=name, line_rate=line, mean_rate=mean,
                        burst_size=burst, jitter=jitter)


class TestBurstySource:
    def test_duty_cycle(self):
        s = source(mean=Mbps(200), line=Gbps(1))
        assert s.duty_cycle == pytest.approx(0.2)

    def test_packets_per_burst(self):
        s = source(burst=KB(64))
        assert s.packets_per_burst == round(64 * 1024 / 1500)

    def test_burst_interval_preserves_mean(self):
        s = source(mean=Mbps(100), burst=KB(128))
        expected = KB(128).bits / Mbps(100).bps
        assert s.burst_interval.s == pytest.approx(expected)

    def test_mean_above_line_rejected(self):
        with pytest.raises(ConfigurationError):
            source(mean=Gbps(2), line=Gbps(1))

    def test_burst_below_packet_rejected(self):
        with pytest.raises(ConfigurationError):
            BurstySource(name="x", line_rate=Gbps(1), mean_rate=Mbps(1),
                         burst_size=bytes_(100), packet_size=bytes_(1500))


class TestArrivals:
    def test_mean_rate_approximated(self, rng):
        s = source(mean=Mbps(200), jitter=0.3)
        duration = seconds(2.0)
        times = generate_arrivals(s, duration, rng)
        delivered_bits = len(times) * s.packet_size.bits
        rate = delivered_bits / duration.s
        assert rate == pytest.approx(Mbps(200).bps, rel=0.1)

    def test_sorted_and_bounded(self, rng):
        s = source()
        times = generate_arrivals(s, seconds(1.0), rng)
        assert np.all(np.diff(times) >= 0)
        assert times[-1] < 1.0

    def test_intra_burst_spacing_is_line_rate(self, rng):
        s = source(jitter=0.0, burst=KB(15))  # ~10 packets per burst
        times = generate_arrivals(s, seconds(0.1), rng)
        gap = s.packet_size.bits / s.line_rate.bps
        # First two packets of the first burst are line-rate spaced.
        assert times[1] - times[0] == pytest.approx(gap, rel=1e-6)

    def test_burstiness_visible_in_trace(self, rng):
        # §5: a 200 Mbps flow on GigE is ~1 Gbps bursts with pauses.
        s = source(mean=Mbps(200), line=Gbps(1), burst=KB(256))
        centers, rate = burst_trace(s, seconds(1.0), rng,
                                    bin_width=seconds(0.0005))
        assert rate.max() > 0.8 * Gbps(1).bps
        assert (rate == 0).sum() > 0.2 * len(rate)


class TestFanIn:
    def test_undersubscribed_no_loss(self, rng):
        # 5 x 200 Mbps mean into 10G with a deep buffer: nothing drops.
        sources = [source(f"s{i}", Mbps(200)) for i in range(5)]
        result = simulate_fan_in(sources, egress_rate=Gbps(10),
                                 buffer_size=MB(16), duration=seconds(0.5),
                                 rng=rng)
        assert result.total_dropped == 0
        assert result.loss_fraction == 0.0

    def test_oversubscribed_shallow_buffer_loses(self, rng):
        # 9 x 600 Mbps mean bursting at 1G into a *degraded* 4.5G egress
        # with a shallow buffer: drops appear (the §6.1 flip-bug regime).
        sources = [source(f"s{i}", Mbps(600), burst=KB(256))
                   for i in range(9)]
        result = simulate_fan_in(sources, egress_rate=Gbps(4.5),
                                 buffer_size=KB(80), duration=seconds(0.5),
                                 rng=rng)
        assert result.total_dropped > 0
        assert 0 < result.loss_fraction < 1

    def test_deep_buffer_rescues_same_load(self, rng):
        sources = [source(f"s{i}", Mbps(600), burst=KB(256))
                   for i in range(9)]
        shallow = simulate_fan_in(sources, egress_rate=Gbps(4.5),
                                  buffer_size=KB(80),
                                  duration=seconds(0.5),
                                  rng=np.random.default_rng(7))
        deep = simulate_fan_in(sources, egress_rate=Gbps(4.5),
                               buffer_size=MB(64),
                               duration=seconds(0.5),
                               rng=np.random.default_rng(7))
        assert deep.loss_fraction < shallow.loss_fraction

    def test_per_source_stats_sum_to_totals(self, rng):
        sources = [source(f"s{i}", Mbps(500), burst=KB(128))
                   for i in range(4)]
        result = simulate_fan_in(sources, egress_rate=Gbps(1),
                                 buffer_size=KB(64), duration=seconds(0.3),
                                 rng=rng)
        assert (sum(s.offered_packets for s in result.per_source.values())
                == result.total_offered)
        assert (sum(s.dropped_packets for s in result.per_source.values())
                == result.total_dropped)

    def test_rates_consistent(self, rng):
        sources = [source(f"s{i}", Mbps(100)) for i in range(3)]
        result = simulate_fan_in(sources, egress_rate=Gbps(10),
                                 buffer_size=MB(1), duration=seconds(0.5),
                                 rng=rng)
        assert result.delivered_rate.bps <= result.offered_rate.bps
        assert result.offered_rate.mbps == pytest.approx(300, rel=0.15)

    def test_mixed_packet_sizes_rejected(self, rng):
        a = source("a")
        b = BurstySource(name="b", line_rate=Gbps(1), mean_rate=Mbps(10),
                         burst_size=KB(64), packet_size=bytes_(9000))
        with pytest.raises(ConfigurationError):
            simulate_fan_in([a, b], egress_rate=Gbps(1),
                            buffer_size=KB(64), duration=seconds(0.1),
                            rng=rng)

    def test_empty_sources_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            simulate_fan_in([], egress_rate=Gbps(1), buffer_size=KB(64),
                            duration=seconds(0.1), rng=rng)

    def test_summary_renders(self, rng):
        sources = [source("solo", Mbps(100))]
        result = simulate_fan_in(sources, egress_rate=Gbps(1),
                                 buffer_size=MB(1), duration=seconds(0.2),
                                 rng=rng)
        text = result.summary()
        assert "fan-in" in text and "solo" in text

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(min_value=1, max_value=6),
           mean_mbps=st.floats(min_value=50, max_value=900))
    def test_loss_fraction_always_valid(self, n, mean_mbps):
        rng = np.random.default_rng(3)
        sources = [source(f"s{i}", Mbps(mean_mbps), burst=KB(128))
                   for i in range(n)]
        result = simulate_fan_in(sources, egress_rate=Gbps(2),
                                 buffer_size=KB(256),
                                 duration=seconds(0.2), rng=rng)
        assert 0.0 <= result.loss_fraction <= 1.0
        assert result.total_offered == result.total_delivered + result.total_dropped

"""Smoke tests: every benchmark script must import and run.

The 21 ``benchmarks/bench_*.py`` scripts are only exercised when
someone regenerates figures, so API drift used to rot them silently.
This suite runs each one inside tier-1 with:

* ``REPRO_BENCH_QUICK=1`` — benches shrink grids/durations via
  ``_common.quick()`` and shape checks are rendered but not asserted
  (tiny grids aren't statistically meaningful — this suite catches
  *breakage*, not regressions in reproduced numbers);
* ``REPRO_RESULTS_DIR`` pointed at a temp dir, so quick-mode tables
  never overwrite the real ``benchmarks/results/``;
* a stub ``benchmark`` fixture that calls the measured function once
  (pytest-benchmark's repeated-rounds timing is not what we're here
  to test).

Module-level pytest fixtures defined by a bench (e.g.
``lossy_profile``) are resolved by unwrapping the fixture function —
benches only use zero-argument fixtures, which the harness asserts.
"""

from __future__ import annotations

import importlib.util
import inspect
import pathlib
import sys

import pytest

BENCH_DIR = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"
BENCH_FILES = sorted(BENCH_DIR.glob("bench_*.py"))


class StubBenchmark:
    """The slice of pytest-benchmark's fixture API the benches use."""

    def __call__(self, fn, *args, **kwargs):
        return fn(*args, **kwargs)

    def pedantic(self, fn, args=(), kwargs=None, rounds=1, iterations=1):
        return fn(*args, **(kwargs or {}))


def _load_bench(path: pathlib.Path):
    name = f"_bench_smoke_{path.stem}"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
    except Exception:
        sys.modules.pop(name, None)
        raise
    return module


def _resolve_fixture(module, name: str):
    if name == "benchmark":
        return StubBenchmark()
    candidate = getattr(module, name, None)
    if candidate is None or not hasattr(candidate, "__wrapped__"):
        raise AssertionError(
            f"bench test wants fixture {name!r} which the smoke harness "
            "cannot supply; keep bench fixtures module-local and "
            "zero-argument")
    raw = candidate.__wrapped__
    if inspect.signature(raw).parameters:
        raise AssertionError(
            f"bench fixture {name!r} takes arguments; the smoke harness "
            "only supports zero-argument fixtures")
    return raw()


def test_benchmarks_discovered():
    """The glob must keep finding the scripts it is guarding."""
    assert len(BENCH_FILES) >= 20, (
        f"only found {len(BENCH_FILES)} bench scripts under {BENCH_DIR}")


@pytest.mark.parametrize("bench_path", BENCH_FILES,
                         ids=lambda p: p.stem)
def test_bench_runs_quick(bench_path, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_QUICK", "1")
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.syspath_prepend(str(BENCH_DIR))

    module = _load_bench(bench_path)
    try:
        tests = [(name, fn) for name, fn in vars(module).items()
                 if name.startswith("test_") and callable(fn)]
        assert tests, f"{bench_path.name} defines no test functions"
        for name, fn in tests:
            kwargs = {
                param: _resolve_fixture(module, param)
                for param in inspect.signature(fn).parameters
            }
            fn(**kwargs)
    finally:
        sys.modules.pop(module.__name__, None)

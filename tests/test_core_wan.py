"""Tests for the reference national backbone."""

import pytest

from repro.core import SITES, national_backbone, site_names
from repro.core.wan import _SPANS
from repro.dtn import Dataset, TransferPlan
from repro.errors import ConfigurationError
from repro.units import GB, Gbps


class TestStructure:
    def test_all_sites_present_and_tagged(self):
        topo = national_backbone()
        for site in SITES:
            node = topo.node(site.name)
            assert node.has_tag("perfsonar")
            assert node.has_tag("dtn")

    def test_every_pair_routable(self):
        topo = national_backbone()
        names = site_names()
        for src in names:
            for dst in names:
                if src != dst:
                    profile = topo.profile_between(src, dst)
                    assert profile.capacity.gbps == 10
                    assert profile.random_loss == 0.0

    def test_rtts_geographically_plausible(self):
        topo = national_backbone()
        coast_to_coast = topo.profile_between("lbl", "bnl").base_rtt.ms
        regional = topo.profile_between("anl", "fnal").base_rtt.ms
        assert 50 < coast_to_coast < 120
        assert regional < 15
        assert coast_to_coast > 3 * regional

    def test_backbone_redundancy(self):
        # The hub ring survives any single span failure.
        for a, b, _ in _SPANS:
            topo = national_backbone()
            topo.remove_link(a, b)
            profile = topo.profile_between("lbl", "bnl")
            assert profile.capacity.bps > 0

    def test_jumbo_everywhere(self):
        topo = national_backbone()
        profile = topo.profile_between("slac", "ornl")
        assert profile.mtu.bytes == 9000
        assert profile.flow.mss.bytes == 8960

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            national_backbone(backbone_rate=Gbps(1), site_rate=Gbps(10))


class TestUsability:
    def test_cross_country_transfer_out_of_the_box(self):
        topo = national_backbone()
        report = TransferPlan(topo, "lbl", "bnl",
                              Dataset("hep-sample", GB(100), 100),
                              "gridftp").execute()
        assert report.mean_throughput.gbps > 1.0

    def test_without_dtns_hosts_are_bare(self):
        topo = national_backbone(with_dtns=False)
        assert topo.node("lbl").meta.get("host_profile") is None

"""Smoke tests: every example script must run cleanly end to end.

Examples are documentation; a broken example is a broken promise.  Each
runs in a subprocess with the repo's interpreter and must exit 0 with
non-trivial output.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_complete():
    assert len(EXAMPLES) >= 8
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script} failed:\nstdout:\n{result.stdout[-2000:]}\n"
        f"stderr:\n{result.stderr[-2000:]}"
    )
    assert len(result.stdout) > 200, f"{script} produced almost no output"


@pytest.mark.parametrize("script,needle", [
    ("quickstart.py", "Science DMZ speedup"),
    ("noaa_reforecast.py", "speedup"),
    ("campus_upgrade.py", "vendor fix"),
    ("campus_upgrade.py", "speedup"),
    ("lhc_tier1.py", "aggregate"),
    ("troubleshoot_softfail.py", "culprit"),
    ("trace_softfail.py", "same-seed rerun byte-identical: True"),
    ("future_tech.py", "bypass rule installed"),
    ("detection_study.py", "fastest configuration"),
])
def test_example_delivers_its_headline(script, needle):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0
    assert needle in result.stdout, (
        f"{script} output lacks {needle!r}"
    )

"""Integration: workload generators driving the multi-flow simulator."""


from repro.core import big_data_site, supercomputer_center
from repro.tcp import MultiFlowSimulation
from repro.units import GB, Gbps, minutes, seconds
from repro.workloads import (
    BackgroundProfile,
    climate_archive_pull,
    lhc_tier2_fanin,
    lightsource_bursts,
)


class TestLhcFanInWorkload:
    def test_cms_fanin_completes_on_big_data_site(self):
        bundle = big_data_site(dtn_count=4)
        workload = lhc_tier2_fanin(
            ["remote-dtn"], "cluster-dtn1",
            per_site_size=GB(50), streams_per_site=4,
            policy=bundle.science_policy)
        sim = MultiFlowSimulation(bundle.topology, workload.specs(),
                                  algorithm="htcp")
        progress = sim.run()
        assert all(p.done for p in progress.values())
        assert sim.aggregate_delivered().bits >= workload.total_bytes.bits * 0.999


class TestClimatePullWorkload:
    def test_parallel_pulls_share_the_wan(self):
        bundle = supercomputer_center()
        workload = climate_archive_pull(
            "remote-dtn", "dtn1", total=GB(200), parallel_transfers=2,
            streams_per_transfer=4, policy=bundle.science_policy)
        sim = MultiFlowSimulation(bundle.topology, workload.specs(),
                                  algorithm="htcp")
        progress = sim.run()
        finish_times = [p.finish_time.s for p in progress.values()]
        assert all(p.done for p in progress.values())
        # Parallel transfers over the same path finish together-ish.
        assert max(finish_times) < 2.0 * min(finish_times)


class TestLightsourceWorkload:
    def test_cycles_arrive_in_order(self):
        bundle = supercomputer_center()
        workload = lightsource_bursts(
            "remote-dtn", "dtn1", dataset_per_cycle=GB(20), cycles=3,
            cycle_gap=minutes(1), policy=bundle.science_policy)
        sim = MultiFlowSimulation(bundle.topology, workload.specs(),
                                  algorithm="htcp")
        progress = sim.run()
        finishes = [progress[f"beamline-cycle-{i}"].finish_time.s
                    for i in range(3)]
        assert finishes == sorted(finishes)
        # Each 20 GB burst fits within its 60 s cycle gap on a 10G path.
        assert finishes[0] < 60


class TestBackgroundContention:
    def test_science_flow_vs_enterprise_background(self):
        """Science elephant + many enterprise mice on one shared link:
        the fluid model gives the mice their (small) demand and the
        elephant the rest."""
        from repro.netsim import FlowSpec, Link, Topology
        from repro.units import Mbps, bytes_, ms
        topo = Topology("shared")
        topo.add_host("src", nic_rate=Gbps(10))
        topo.add_host("dst", nic_rate=Gbps(10))
        topo.connect("src", "dst", Link(rate=Gbps(1), delay=ms(10),
                                        mtu=bytes_(1500)))
        bg = BackgroundProfile(flow_count=100, per_flow_mean=Mbps(2))
        specs = bg.flow_specs("src", "dst", bundle=5)
        specs.append(FlowSpec(src="src", dst="dst", size=GB(2),
                              parallel_streams=4, label="science"))
        sim = MultiFlowSimulation(topo, specs, algorithm="htcp")
        progress = sim.run(until=seconds(120))
        science = progress["science"]
        assert science.done
        # Background demand is 200 Mbps of the 1G link; science gets the
        # remaining ~800 Mbps, so 2 GB takes ~20-40 s.
        assert 15 < science.finish_time.s < 80
        delivered_bg = sum(progress[s.label].delivered.bits
                           for s in specs[:-1])
        assert delivered_bg > 0

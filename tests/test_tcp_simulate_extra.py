"""Additional multi-flow simulator behaviours: rate caps, loss accounting,
time series, and algorithm strings."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.netsim import FlowSpec, Link, Topology
from repro.tcp import MultiFlowSimulation
from repro.units import GB, Gbps, MB, Mbps, bytes_, ms, seconds


def lossy_pair(loss=1e-4):
    topo = Topology("pair")
    topo.add_host("a", nic_rate=Gbps(10))
    topo.add_host("b", nic_rate=Gbps(10))
    topo.connect("a", "b", Link(rate=Gbps(10), delay=ms(10),
                                mtu=bytes_(9000), loss_probability=loss))
    return topo


class TestRateCaps:
    def test_rate_limited_flow_respects_cap(self, clean_path_topology):
        spec = FlowSpec(src="a", dst="b", size=GB(1),
                        rate_limit=Mbps(500), label="capped")
        sim = MultiFlowSimulation(clean_path_topology, [spec])
        progress = sim.run()
        elapsed = progress["capped"].finish_time.s
        # 1 GB at 500 Mbps = 16 s minimum.
        assert elapsed >= 15.5

    def test_uncapped_flow_much_faster(self, clean_path_topology):
        free = MultiFlowSimulation(
            clean_path_topology,
            [FlowSpec(src="a", dst="b", size=GB(1), label="free")],
        ).run()["free"]
        capped = MultiFlowSimulation(
            clean_path_topology,
            [FlowSpec(src="a", dst="b", size=GB(1),
                      rate_limit=Mbps(500), label="capped")],
        ).run()["capped"]
        assert free.finish_time.s < capped.finish_time.s / 3


class TestLossAccounting:
    def test_loss_events_counted_on_lossy_path(self):
        topo = lossy_pair(loss=1e-3)
        sim = MultiFlowSimulation(
            topo, [FlowSpec(src="a", dst="b", size=GB(1), label="f")],
            rng=np.random.default_rng(1))
        progress = sim.run()
        assert progress["f"].loss_events > 0

    def test_clean_uncongested_flow_sees_no_loss(self, clean_path_topology):
        sim = MultiFlowSimulation(
            clean_path_topology,
            [FlowSpec(src="a", dst="b", size=MB(500),
                      rate_limit=Gbps(1), label="f")])
        progress = sim.run()
        assert progress["f"].loss_events == 0


class TestTimeSeries:
    def test_series_sampled_while_running(self, clean_path_topology):
        sim = MultiFlowSimulation(
            clean_path_topology,
            [FlowSpec(src="a", dst="b", size=GB(20), label="f")])
        progress = sim.run(sample_interval=seconds(1.0))
        series = progress["f"].time_series
        assert len(series) >= 3
        times = [t for t, _ in series]
        assert times == sorted(times)
        rates = [r for _, r in series]
        assert max(rates) > 0

    def test_mean_throughput_helper(self, clean_path_topology):
        sim = MultiFlowSimulation(
            clean_path_topology,
            [FlowSpec(src="a", dst="b", size=GB(1), label="f")])
        progress = sim.run()
        rate = progress["f"].mean_throughput(sim.finished_at)
        expected = GB(1).bits / progress["f"].finish_time.s
        assert rate.bps == pytest.approx(expected, rel=0.05)


class TestAlgorithmSelection:
    def test_string_algorithm_accepted_globally(self, clean_path_topology):
        sim = MultiFlowSimulation(
            clean_path_topology,
            [FlowSpec(src="a", dst="b", size=MB(100), label="f")],
            algorithm="cubic")
        assert sim.run()["f"].done

    def test_unknown_string_algorithm_rejected(self, clean_path_topology):
        with pytest.raises(ConfigurationError):
            MultiFlowSimulation(
                clean_path_topology,
                [FlowSpec(src="a", dst="b", size=MB(1), label="f")],
                algorithm={"f": "tachyon"})


class TestTickBudget:
    def test_max_ticks_exceeded_raises(self, clean_path_topology):
        from repro.errors import SimulationError
        sim = MultiFlowSimulation(
            clean_path_topology,
            [FlowSpec(src="a", dst="b", size=GB(100), label="f",
                      rate_limit=Mbps(1))])  # would take ~9 days
        with pytest.raises(SimulationError):
            sim.run(max_ticks=100)

"""Tests for transfer integrity: checksum retries vs silent corruption."""


from repro.dtn.host import attach_profile, tuned_dtn
from repro.dtn.storage import ParallelFilesystem
from repro.dtn.transfer import CORRUPTION_PER_PACKET, Dataset, TransferPlan
from repro.netsim import Link, Topology
from repro.units import GB, Gbps, TB, bytes_, ms


def wan_pair():
    topo = Topology("pair")
    src = topo.add_host("src", nic_rate=Gbps(10))
    dst = topo.add_host("dst", nic_rate=Gbps(10))
    topo.connect("src", "dst", Link(rate=Gbps(10), delay=ms(20),
                                    mtu=bytes_(9000)))
    attach_profile(src, tuned_dtn("src", ParallelFilesystem()))
    attach_profile(dst, tuned_dtn("dst", ParallelFilesystem()))
    return topo


BIG_CAMPAIGN = Dataset("campaign", TB(40), 1200)  # ~33 GB files


class TestIntegritySemantics:
    def test_globus_retries_and_delivers_clean(self):
        report = TransferPlan(wan_pair(), "src", "dst", BIG_CAMPAIGN,
                              "globus").execute()
        assert report.expected_corrupt_files == 0.0
        assert report.expected_retried_files > 0.0

    def test_gridftp_without_checksums_delivers_corruption(self):
        # Plain gridftp (no checksum_overhead, no restart) leaves residual
        # corruption undetected.
        report = TransferPlan(wan_pair(), "src", "dst", BIG_CAMPAIGN,
                              "gridftp").execute()
        assert report.expected_retried_files == 0.0
        assert report.expected_corrupt_files > 0.0

    def test_corruption_scales_with_file_size(self):
        small_files = Dataset("small", GB(100), 10_000)   # 10 MB files
        big_files = Dataset("big", GB(100), 10)           # 10 GB files
        topo = wan_pair()
        small = TransferPlan(topo, "src", "dst", small_files,
                             "gridftp").execute()
        big = TransferPlan(topo, "src", "dst", big_files,
                           "gridftp").execute()
        # Per-file corruption probability grows with packets per file, but
        # total expected corrupt *data* is what matters — expected corrupt
        # files x file size is roughly conserved; per-file probability is
        # much higher for big files.
        p_small = small.expected_corrupt_files / small_files.file_count
        p_big = big.expected_corrupt_files / big_files.file_count
        assert p_big > 100 * p_small

    def test_retry_cost_is_visible_in_duration(self):
        topo = wan_pair()
        with_retries = TransferPlan(topo, "src", "dst", BIG_CAMPAIGN,
                                    "globus").execute()
        plain = TransferPlan(topo, "src", "dst", BIG_CAMPAIGN,
                             "gridftp").execute()
        # Globus pays checksum overhead + retransmissions.
        assert with_retries.duration.s > plain.duration.s

    def test_corruption_constant_is_sane(self):
        assert 0 < CORRUPTION_PER_PACKET < 1e-6

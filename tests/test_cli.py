"""Tests for the command-line interface."""

import pytest

from repro.cli import DESIGNS, main


class TestDesignsCommand:
    def test_lists_all(self, capsys):
        assert main(["designs"]) == 0
        out = capsys.readouterr().out
        for name in DESIGNS:
            assert name in out


class TestAuditCommand:
    def test_passing_design_exits_zero(self, capsys):
        assert main(["audit", "simple-science-dmz"]) == 0
        assert "PASSES" in capsys.readouterr().out

    def test_failing_design_exits_nonzero(self, capsys):
        assert main(["audit", "general-purpose-campus"]) == 1
        assert "FAILS" in capsys.readouterr().out

    def test_unknown_design_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["audit", "atlantis-campus"])


class TestTransferCommand:
    def test_default_transfer(self, capsys):
        assert main(["transfer", "simple-science-dmz",
                     "--size", "10GB", "--files", "10"]) == 0
        out = capsys.readouterr().out
        assert "10 GB" in out and "globus" in out

    def test_firewalled_transfer(self, capsys):
        assert main(["transfer", "simple-science-dmz", "--size", "1GB",
                     "--files", "1", "--tool", "ftp",
                     "--dst", "lab-server1", "--via-firewall"]) == 0
        out = capsys.readouterr().out
        assert "ftp" in out

    def test_bad_size_is_graceful(self, capsys):
        assert main(["transfer", "simple-science-dmz",
                     "--size", "lots"]) == 2
        assert "error:" in capsys.readouterr().err


class TestMathisCommand:
    def test_loss_calculation(self, capsys):
        assert main(["mathis", "--mss", "9000B", "--rtt", "50ms",
                     "--loss", "4.5e-5"]) == 0
        assert "Mathis ceiling" in capsys.readouterr().out

    def test_window_calculation(self, capsys):
        assert main(["mathis", "--rtt", "10ms", "--rate", "1Gbps"]) == 0
        out = capsys.readouterr().out
        assert "1.25 MB" in out

    def test_nothing_requested(self, capsys):
        assert main(["mathis"]) == 2


class TestUpgradeCommand:
    def test_upgrade_baseline(self, capsys):
        assert main(["upgrade"]) == 0
        out = capsys.readouterr().out
        assert "BEFORE" in out and "AFTER" in out
        assert "FAILS" in out and "PASSES" in out

    def test_upgrade_passing_design_noop(self, capsys):
        assert main(["upgrade", "simple-science-dmz"]) == 0
        assert "nothing to do" in capsys.readouterr().out


class TestExportDescribe:
    def test_export_to_file_and_describe(self, tmp_path, capsys):
        path = tmp_path / "dmz.json"
        assert main(["export", "simple-science-dmz", "-o", str(path)]) == 0
        assert path.exists()
        capsys.readouterr()
        assert main(["describe", str(path)]) == 0
        out = capsys.readouterr().out
        assert "dtn1" in out and "firewall" in out

    def test_export_to_stdout(self, capsys):
        assert main(["export", "general-purpose-campus"]) == 0
        out = capsys.readouterr().out
        import json
        data = json.loads(out)
        assert data["name"] == "general-purpose-campus"

    def test_exported_design_roundtrips(self, tmp_path):
        import json
        from repro.netsim import topology_from_dict
        path = tmp_path / "t.json"
        main(["export", "supercomputer-center", "-o", str(path)])
        topo = topology_from_dict(json.loads(path.read_text()))
        assert topo.has_node("dtn1")


class TestLintCommand:
    def test_clean_design_exits_zero(self, capsys):
        assert main(["lint", "simple-science-dmz"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_dirty_design_lists_findings(self, capsys):
        assert main(["lint", "general-purpose-campus"]) == 1
        out = capsys.readouterr().out
        assert "firewall-in-path" in out
        assert "critical" in out


class TestSweepCommand:
    def test_mathis_sweep_renders_table(self, capsys):
        assert main(["sweep", "mathis", "--rtt", "10,50",
                     "--loss", "4.5e-5"]) == 0
        out = capsys.readouterr().out
        assert "mathis sweep" in out and "gbps" in out
        assert "workers=1" in out and "cache=off" in out

    def test_parallel_cached_rerun_hits(self, capsys, tmp_path):
        args = ["sweep", "mathis", "--rtt", "5,20", "--loss", "1e-4",
                "--workers", "2", "--cache-dir", str(tmp_path / "c"),
                "--stats"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out
        # identical table, but the rerun is served from the cache
        def table(text):
            return text.split("execution stats:")[0]

        def counter(text, name):
            line = next(l for l in text.splitlines()
                        if f"{name} (counter)" in l)
            return float(line.split()[-1])

        assert table(first) == table(second)
        assert counter(first, "misses") == 2 and counter(first, "hits") == 0
        assert counter(second, "hits") == 2
        assert counter(second, "evaluated") == 0

    def test_stats_json_artifact(self, tmp_path, capsys):
        import json
        out_path = tmp_path / "stats.json"
        assert main(["sweep", "mathis", "--rtt", "10", "--loss", "1e-4",
                     "--cache-dir", str(tmp_path / "c"),
                     "--stats-json", str(out_path)]) == 0
        capsys.readouterr()
        stats = json.loads(out_path.read_text())
        assert stats["target"] == "mathis"
        assert stats["grid_points"] == 1
        assert stats["cache_misses"] == 1 and stats["cache_hits"] == 0

    def test_zero_loss_rejected(self, capsys):
        assert main(["sweep", "mathis", "--loss", "0"]) == 2
        assert "positive" in capsys.readouterr().err

    def test_bad_rtt_rejected(self, capsys):
        assert main(["sweep", "mathis", "--rtt", "ten"]) == 2
        assert "comma-separated" in capsys.readouterr().err


class TestSpecsCommand:
    SPECS = __import__("pathlib").Path(__file__).parent.parent / "specs"

    def test_lists_every_committed_spec_with_true_digests(self, capsys):
        from repro.experiment import ExperimentSpec

        assert main(["specs", "--dir", str(self.SPECS)]) == 0
        out = capsys.readouterr().out
        for path in sorted(self.SPECS.glob("*.json")):
            if path.name == "golden.json":
                assert path.name not in out  # sidecar, not a spec
                continue
            spec = ExperimentSpec.from_file(path)
            line = next(l for l in out.splitlines()
                        if l.startswith(path.name))
            assert spec.digest()[:12] in line
            assert spec.kind in line

    def test_listing_imports_no_lazy_subsystems(self):
        """`repro specs` must list campaign/federation specs from raw
        JSON without importing repro.chaos or repro.federation — the
        whole point of the lazy-kind registry."""
        import subprocess
        import sys

        probe = (
            "import sys\n"
            "from repro.cli import main\n"
            f"rc = main(['specs', '--dir', {str(self.SPECS)!r}])\n"
            "assert rc == 0, rc\n"
            "leaked = [m for m in ('repro.chaos', 'repro.federation')\n"
            "          if m in sys.modules]\n"
            "assert not leaked, f'lazy kinds imported: {leaked}'\n"
        )
        src = self.SPECS.parent / "src"
        result = subprocess.run(
            [sys.executable, "-c", probe], capture_output=True, text=True,
            env={**__import__("os").environ, "PYTHONPATH": str(src)})
        assert result.returncode == 0, result.stderr
        assert "federation_quick.json" in result.stdout

    def test_unreadable_spec_flags_exit_one(self, tmp_path, capsys):
        (tmp_path / "broken.json").write_text("{not json")
        (tmp_path / "unknown.json").write_text(
            '{"schema": 1, "kind": "warp-drive", "name": "x"}')
        assert main(["specs", "--dir", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert out.count("UNREADABLE") == 2

    def test_lazy_kind_with_bad_schema_flagged(self, tmp_path, capsys):
        # Whether "federation" is still lazy (raw-JSON path) or already
        # imported by an earlier test (eager parse), a wrong schema
        # version must land in the UNREADABLE bucket with exit 1.
        (tmp_path / "fed.json").write_text(
            '{"schema": 99, "kind": "federation", "name": "x"}')
        assert main(["specs", "--dir", str(tmp_path)]) == 1
        assert "UNREADABLE" in capsys.readouterr().out

    def test_missing_dir_rejected(self, capsys):
        assert main(["specs", "--dir", "no-such-dir"]) == 2
        assert "no spec directory" in capsys.readouterr().err

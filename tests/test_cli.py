"""Tests for the command-line interface."""

import pytest

from repro.cli import DESIGNS, main


class TestDesignsCommand:
    def test_lists_all(self, capsys):
        assert main(["designs"]) == 0
        out = capsys.readouterr().out
        for name in DESIGNS:
            assert name in out


class TestAuditCommand:
    def test_passing_design_exits_zero(self, capsys):
        assert main(["audit", "simple-science-dmz"]) == 0
        assert "PASSES" in capsys.readouterr().out

    def test_failing_design_exits_nonzero(self, capsys):
        assert main(["audit", "general-purpose-campus"]) == 1
        assert "FAILS" in capsys.readouterr().out

    def test_unknown_design_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["audit", "atlantis-campus"])


class TestTransferCommand:
    def test_default_transfer(self, capsys):
        assert main(["transfer", "simple-science-dmz",
                     "--size", "10GB", "--files", "10"]) == 0
        out = capsys.readouterr().out
        assert "10 GB" in out and "globus" in out

    def test_firewalled_transfer(self, capsys):
        assert main(["transfer", "simple-science-dmz", "--size", "1GB",
                     "--files", "1", "--tool", "ftp",
                     "--dst", "lab-server1", "--via-firewall"]) == 0
        out = capsys.readouterr().out
        assert "ftp" in out

    def test_bad_size_is_graceful(self, capsys):
        assert main(["transfer", "simple-science-dmz",
                     "--size", "lots"]) == 2
        assert "error:" in capsys.readouterr().err


class TestMathisCommand:
    def test_loss_calculation(self, capsys):
        assert main(["mathis", "--mss", "9000B", "--rtt", "50ms",
                     "--loss", "4.5e-5"]) == 0
        assert "Mathis ceiling" in capsys.readouterr().out

    def test_window_calculation(self, capsys):
        assert main(["mathis", "--rtt", "10ms", "--rate", "1Gbps"]) == 0
        out = capsys.readouterr().out
        assert "1.25 MB" in out

    def test_nothing_requested(self, capsys):
        assert main(["mathis"]) == 2


class TestUpgradeCommand:
    def test_upgrade_baseline(self, capsys):
        assert main(["upgrade"]) == 0
        out = capsys.readouterr().out
        assert "BEFORE" in out and "AFTER" in out
        assert "FAILS" in out and "PASSES" in out

    def test_upgrade_passing_design_noop(self, capsys):
        assert main(["upgrade", "simple-science-dmz"]) == 0
        assert "nothing to do" in capsys.readouterr().out


class TestExportDescribe:
    def test_export_to_file_and_describe(self, tmp_path, capsys):
        path = tmp_path / "dmz.json"
        assert main(["export", "simple-science-dmz", "-o", str(path)]) == 0
        assert path.exists()
        capsys.readouterr()
        assert main(["describe", str(path)]) == 0
        out = capsys.readouterr().out
        assert "dtn1" in out and "firewall" in out

    def test_export_to_stdout(self, capsys):
        assert main(["export", "general-purpose-campus"]) == 0
        out = capsys.readouterr().out
        import json
        data = json.loads(out)
        assert data["name"] == "general-purpose-campus"

    def test_exported_design_roundtrips(self, tmp_path):
        import json
        from repro.netsim import topology_from_dict
        path = tmp_path / "t.json"
        main(["export", "supercomputer-center", "-o", str(path)])
        topo = topology_from_dict(json.loads(path.read_text()))
        assert topo.has_node("dtn1")


class TestLintCommand:
    def test_clean_design_exits_zero(self, capsys):
        assert main(["lint", "simple-science-dmz"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_dirty_design_lists_findings(self, capsys):
        assert main(["lint", "general-purpose-campus"]) == 1
        out = capsys.readouterr().out
        assert "firewall-in-path" in out
        assert "critical" in out

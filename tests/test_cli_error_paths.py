"""Every ``repro run`` / ``repro sweep`` / ``repro chaos`` failure mode
must exit non-zero with a message that tells the user what to fix:
malformed specs, unknown registry keys, and golden-digest drift.

The codes follow one convention (the table in :mod:`repro.cli`'s
docstring): 0 success, 1 domain failure (valid input, bad outcome),
2 bad input — ``TestExitCodeConvention`` pins it across commands."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.cli import EXIT_BAD_INPUT, EXIT_DOMAIN_FAILURE, EXIT_OK, main

SPECS = pathlib.Path(__file__).parent.parent / "specs"


def write_spec(tmp_path, name, payload, *, schema=1):
    if schema is not None:
        payload.setdefault("schema", schema)
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return path


@pytest.fixture
def cli(capsys):
    """Run the CLI, returning (exit_code, stdout, stderr)."""
    def run(*argv):
        rc = main([str(a) for a in argv])
        captured = capsys.readouterr()
        return rc, captured.out, captured.err
    return run


class TestMalformedSpecs:
    def test_missing_spec_file(self, cli, tmp_path):
        rc, _, err = cli("run", tmp_path / "nope.json")
        assert rc == 2
        assert "cannot read spec" in err and "nope.json" in err

    def test_invalid_json(self, cli, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        rc, _, err = cli("run", path)
        assert rc == 2
        assert "not valid JSON" in err

    def test_missing_schema_field(self, cli, tmp_path):
        path = write_spec(tmp_path, "noschema.json",
                          {"kind": "scenario", "name": "x", "seed": 1},
                          schema=None)
        rc, _, err = cli("run", path)
        assert rc == 2
        assert "schema" in err

    def test_chaos_rejects_wrong_spec_kind(self, cli):
        rc, _, err = cli("chaos", SPECS / "fig1_tcp_loss_quick.json")
        assert rc == 2
        assert "needs a campaign or scenario spec" in err
        assert "'sweep'" in err


class TestUnknownRegistryKeys:
    """Each message must name the bad key AND list the known ones."""

    def test_unknown_spec_kind(self, cli, tmp_path):
        path = write_spec(tmp_path, "unk.json",
                          {"kind": "warp", "name": "x", "seed": 1})
        rc, _, err = cli("run", path)
        assert rc == 2
        assert "unknown spec kind 'warp'" in err
        assert "campaign" in err and "scenario" in err

    def test_unknown_fault_kind_in_scenario(self, cli, tmp_path):
        path = write_spec(
            tmp_path, "bf.json",
            {"kind": "scenario", "name": "x", "seed": 1,
             "faults": [{"kind": "warp-core", "at_s": 10.0}]})
        rc, _, err = cli("run", path)
        assert rc == 2
        assert "unknown fault kind 'warp-core'" in err
        assert "linecard" in err

    def test_unknown_design_in_campaign(self, cli, tmp_path):
        path = write_spec(tmp_path, "bd.json",
                          {"kind": "campaign", "name": "x", "seed": 1,
                           "design": "atlantis"})
        rc, _, err = cli("chaos", path)
        assert rc == 2
        assert "unknown design 'atlantis'" in err
        assert "simple-science-dmz" in err

    def test_unknown_fault_kind_in_fault_space(self, cli, tmp_path):
        path = write_spec(tmp_path, "bk.json",
                          {"kind": "campaign", "name": "x", "seed": 1,
                           "space": {"kinds": ["warp-core"]}})
        rc, _, err = cli("chaos", path)
        assert rc == 2
        assert "warp-core" in err and "known kinds" in err

    def test_unknown_oracle_flag(self, cli):
        rc, _, err = cli("chaos", SPECS / "chaos_demo_repro.json",
                         "--oracle", "no-such-oracle")
        assert rc == 2
        assert "unknown oracle 'no-such-oracle'" in err
        assert "packets-conserved" in err

    def test_empty_oracle_name(self, cli):
        rc, _, err = cli("chaos", SPECS / "chaos_demo_repro.json",
                         "--oracle", ":min_loss=1")
        assert rc == 2
        assert "empty oracle name" in err

    def test_unknown_sweep_target_rejected_by_parser(self, cli, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["sweep", "warp"])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err


class TestSweepValidation:
    def test_zero_loss_rejected(self, cli):
        rc, _, err = cli("sweep", "mathis", "--loss", "0.0")
        assert rc == 2
        assert "positive" in err

    def test_empty_grid_rejected(self, cli):
        rc, _, err = cli("sweep", "mathis", "--rtt", "")
        assert rc == 2
        assert "--rtt" in err


class TestGoldenDrift:
    SPEC = SPECS / "linecard_softfail.json"

    def golden_for(self, tmp_path, **overrides):
        committed = json.loads((SPECS / "golden.json").read_text())
        entry = dict(committed["linecard-softfail"])
        entry.update(overrides)
        path = tmp_path / "golden.json"
        path.write_text(json.dumps({"linecard-softfail": entry}))
        return path

    def test_matching_golden_passes(self, cli, tmp_path):
        rc, out, _ = cli("run", self.SPEC, "--no-persist",
                         "--golden", self.golden_for(tmp_path))
        assert rc == 0
        assert "digests match" in out

    def test_result_drift_exits_one(self, cli, tmp_path):
        golden = self.golden_for(tmp_path, result_digest="0" * 64)
        rc, _, err = cli("run", self.SPEC, "--no-persist",
                         "--golden", golden)
        assert rc == 1
        assert "GOLDEN DRIFT" in err
        assert "result_digest" in err and "0" * 64 in err

    def test_missing_entry_exits_two(self, cli, tmp_path):
        path = tmp_path / "golden.json"
        path.write_text("{}")
        rc, _, err = cli("run", self.SPEC, "--no-persist",
                         "--golden", path)
        assert rc == 2
        assert "no entry for" in err

    def test_unreadable_golden_exits_two(self, cli, tmp_path):
        rc, _, err = cli("run", self.SPEC, "--no-persist",
                         "--golden", tmp_path / "absent.json")
        assert rc == 2
        assert "cannot read golden file" in err


class TestExitCodeConvention:
    """0 ok / 1 domain failure / 2 bad input, uniformly.

    The convention's value is that scripts and CI can branch on the
    code without parsing stderr — so each class gets a representative
    from several commands, including the serve family.
    """

    # A port where nothing listens (TEST-NET-3 would hang; a closed
    # local port fails fast with ECONNREFUSED).
    DEAD_URL = "http://127.0.0.1:1"

    def test_constants_are_distinct_and_documented(self):
        import repro.cli as cli_mod

        assert (EXIT_OK, EXIT_DOMAIN_FAILURE, EXIT_BAD_INPUT) == (0, 1, 2)
        # The docstring table must mention every code's meaning.
        doc = cli_mod.__doc__
        assert "domain failure" in doc and "bad input" in doc

    def test_success_is_zero(self, cli):
        rc, _, _ = cli("mathis", "--loss", "4.5e-5")
        assert rc == EXIT_OK

    def test_audit_failure_is_one(self, cli):
        # Valid design, failing audit: a domain outcome, not bad input.
        rc, _, _ = cli("audit", "general-purpose-campus")
        assert rc == EXIT_DOMAIN_FAILURE

    def test_golden_drift_is_one_bad_spec_is_two(self, cli, tmp_path):
        golden = tmp_path / "golden.json"
        committed = json.loads((SPECS / "golden.json").read_text())
        entry = dict(committed["linecard-softfail"],
                     result_digest="0" * 64)
        golden.write_text(json.dumps({"linecard-softfail": entry}))
        rc, _, _ = cli("run", SPECS / "linecard_softfail.json",
                       "--no-persist", "--golden", golden)
        assert rc == EXIT_DOMAIN_FAILURE
        rc, _, _ = cli("run", tmp_path / "missing.json")
        assert rc == EXIT_BAD_INPUT

    def test_chaos_violation_is_one(self, cli):
        rc, _, err = cli("chaos",
                         SPECS / "chaos_demo_broken_oracle.json",
                         "--no-persist")
        assert rc == EXIT_DOMAIN_FAILURE

    def test_unreachable_service_is_one(self, cli):
        rc, _, err = cli("jobs", "--url", self.DEAD_URL)
        assert rc == EXIT_DOMAIN_FAILURE
        assert "cannot reach service" in err

    def test_submit_unreachable_service_is_one(self, cli):
        rc, _, err = cli("submit", SPECS / "fig1_tcp_loss_quick.json",
                         "--url", self.DEAD_URL)
        assert rc == EXIT_DOMAIN_FAILURE
        assert "cannot reach service" in err

    def test_submit_bad_spec_is_two_without_a_server(self, cli,
                                                     tmp_path):
        # Input validation happens before any network traffic.
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        rc, _, err = cli("submit", path, "--url", self.DEAD_URL)
        assert rc == EXIT_BAD_INPUT
        assert "not valid JSON" in err

    def test_submit_bad_url_scheme_is_two(self, cli):
        rc, _, err = cli("jobs", "--url", "ftp://example.org")
        assert rc == EXIT_BAD_INPUT
        assert "http" in err

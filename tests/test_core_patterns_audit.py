"""Tests for the design patterns, the ScienceDMZ builder, and the audit."""

import pytest

from repro.core import (
    ALL_PATTERNS,
    AuditReport,
    ScienceDMZ,
    audit_design,
    big_data_site,
    campus_with_rcnet,
    general_purpose_campus,
    simple_science_dmz,
    supercomputer_center,
)
from repro.core.patterns import (
    DEDICATED_SYSTEMS_PATTERN,
    LOCATION_PATTERN,
    MONITORING_PATTERN,
    SECURITY_PATTERN,
)
from repro.devices.acl import AclEngine
from repro.dtn.host import attach_profile, untuned_host
from repro.errors import AuditError, ConfigurationError
from repro.netsim import Link, Topology
from repro.netsim.node import Router
from repro.units import Gbps, ms


class TestPatternMetadata:
    def test_four_patterns(self):
        assert len(ALL_PATTERNS) == 4
        assert {p.name for p in ALL_PATTERNS} == {
            "location", "dedicated-systems", "performance-monitoring",
            "appropriate-security",
        }

    def test_sections_match_paper(self):
        assert LOCATION_PATTERN.section == "3.1"
        assert DEDICATED_SYSTEMS_PATTERN.section == "3.2"
        assert MONITORING_PATTERN.section == "3.3"
        assert SECURITY_PATTERN.section == "3.4"

    def test_context_keys_required(self):
        topo = Topology("t")
        with pytest.raises(ConfigurationError):
            LOCATION_PATTERN.check(topo, {})


class TestScienceDmzBuilder:
    def build(self):
        topo = Topology("campus")
        topo.add_node(Router(name="border"))
        topo.add_node(Router(name="wan"))
        topo.connect("border", "wan", Link(rate=Gbps(10), delay=ms(1)))
        return topo, ScienceDMZ(topo, border="border", wan="wan")

    def test_dtn_attached_at_perimeter(self):
        topo, dmz = self.build()
        dmz.add_dtn("dtn1")
        path = topo.path("dtn1", "wan")
        assert path.node_names() == ["dtn1", "dmz-switch", "border", "wan"]

    def test_dtn_gets_tuned_profile(self):
        topo, dmz = self.build()
        dtn = dmz.add_dtn("dtn1")
        assert dtn.meta["host_profile"].dedicated

    def test_perfsonar_tagged(self):
        topo, dmz = self.build()
        ps = dmz.add_perfsonar()
        assert ps.has_tag("perfsonar")

    def test_acl_installed_on_switch(self):
        topo, dmz = self.build()
        dmz.add_dtn("dtn1")
        engine = dmz.install_acl(allowed_peers=["remote"])
        assert engine in dmz.switch.elements
        assert engine.permits("remote", "dtn1", "tcp", 50000)
        assert not engine.permits("remote", "dtn1", "tcp", 22)

    def test_acl_reinstall_replaces(self):
        topo, dmz = self.build()
        dmz.add_dtn("dtn1")
        dmz.install_acl()
        dmz.install_acl()
        engines = [e for e in dmz.switch.elements if isinstance(e, AclEngine)]
        assert len(engines) == 1

    def test_full_dmz_passes_audit(self):
        topo, dmz = self.build()
        dmz.add_dtn("dtn1")
        dmz.add_perfsonar()
        dmz.install_acl()
        report = dmz.audit()
        assert report.passed, report.render_text()

    def test_missing_acl_fails_security(self):
        topo, dmz = self.build()
        dmz.add_dtn("dtn1")
        dmz.add_perfsonar()
        report = dmz.audit()
        assert not report.pattern_passed("appropriate-security")

    def test_wan_node_must_exist(self):
        topo = Topology("t")
        topo.add_node(Router(name="border"))
        with pytest.raises(ConfigurationError):
            ScienceDMZ(topo, border="border", wan="missing")


class TestDesignAudits:
    def test_baseline_fails_every_pattern(self):
        report = general_purpose_campus().audit()
        assert not report.passed
        for pattern in ("location", "dedicated-systems",
                        "performance-monitoring", "appropriate-security"):
            assert not report.pattern_passed(pattern), pattern

    def test_paper_designs_pass(self):
        for builder in (simple_science_dmz, supercomputer_center,
                        big_data_site, campus_with_rcnet):
            report = builder().audit()
            assert report.passed, f"{builder.__name__}:\n{report.render_text()}"

    def test_fixed_colorado_also_passes(self):
        assert campus_with_rcnet(fixed_fabric=True).audit().passed

    def test_untuning_a_dtn_fails_dedicated_pattern(self):
        bundle = simple_science_dmz()
        node = bundle.topology.node("dtn1")
        attach_profile(node, untuned_host("dtn1"))
        report = bundle.audit()
        assert not report.pattern_passed("dedicated-systems")
        assert report.pattern_passed("location")

    def test_report_api(self):
        report = general_purpose_campus().audit()
        assert isinstance(report, AuditReport)
        assert report.failures()
        by_pattern = report.by_pattern()
        assert set(by_pattern) == {p.name for p in ALL_PATTERNS}
        with pytest.raises(AuditError):
            report.pattern_passed("nonexistent-pattern")
        with pytest.raises(AuditError):
            report.require_pass()
        text = report.render_text()
        assert "FAILS" in text

    def test_audit_subset_of_patterns(self):
        bundle = simple_science_dmz()
        report = audit_design(bundle.topology, dtns=bundle.dtns,
                              wan_node=bundle.wan,
                              patterns=[LOCATION_PATTERN])
        assert {f.pattern for f in report.findings} == {"location"}


class TestDesignStructure:
    def test_simple_dmz_keeps_enterprise_path(self):
        bundle = simple_science_dmz()
        ent = bundle.topology.path("lab-server1", "wan")
        assert ent.traverses_kind("firewall")
        sci = bundle.topology.path("dtn1", "wan", **bundle.science_policy)
        assert not sci.traverses_kind("firewall")

    def test_supercomputer_login_not_on_science_path(self):
        bundle = supercomputer_center()
        sci = bundle.topology.path("dtn1", "wan", **bundle.science_policy)
        assert "login1" not in sci.node_names()

    def test_supercomputer_shared_filesystem(self):
        bundle = supercomputer_center()
        pfs = bundle.extras["parallel_fs"]
        assert pfs.shared_with_compute
        # Every DTN mounts the same object — no double copy.
        profiles = [bundle.topology.node(d).meta["host_profile"]
                    for d in bundle.dtns]
        assert all(p.storage is pfs for p in profiles)

    def test_big_data_site_has_redundant_borders(self):
        bundle = big_data_site()
        topo = bundle.topology
        assert topo.has_node("border1") and topo.has_node("border2")
        # Killing border1's uplink leaves the site reachable via border2.
        topo.remove_link("border1", "wan")
        path = topo.path("cluster-dtn1", "wan", **bundle.science_policy)
        assert "border2" in path.node_names()

    def test_colorado_fabric_wired(self):
        bundle = campus_with_rcnet()
        fabric = bundle.extras["fabric"]
        assert fabric.flip_bug
        fixed = campus_with_rcnet(fixed_fabric=True)
        assert not fixed.extras["fabric"].flip_bug

    def test_colorado_perfsonar_at_both_rates(self):
        bundle = campus_with_rcnet()
        topo = bundle.topology
        assert topo.node("perf1g").nic_rate.gbps == 1
        assert topo.node("perf10g").nic_rate.gbps == 10

    def test_remote_peer_present_everywhere(self):
        for builder in (general_purpose_campus, simple_science_dmz,
                        supercomputer_center, big_data_site,
                        campus_with_rcnet):
            bundle = builder()
            assert bundle.topology.has_node("remote-dtn")
            profile = bundle.topology.profile_between(
                bundle.remote_dtn, bundle.dtns[0], **bundle.science_policy)
            assert profile.capacity.bps > 0

    def test_wan_rtt_parameter(self):
        near = simple_science_dmz(wan_rtt=ms(10))
        far = simple_science_dmz(wan_rtt=ms(100))
        p_near = near.topology.profile_between("remote-dtn", "dtn1",
                                               **near.science_policy)
        p_far = far.topology.profile_between("remote-dtn", "dtn1",
                                             **far.science_policy)
        assert p_far.base_rtt.s > p_near.base_rtt.s * 5

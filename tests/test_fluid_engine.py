"""Property-based and contract tests for the mean-field engine.

Three invariant families, per the engine's design notes:

* **byte conservation** — per-flow delivered totals reconstructed from
  the class cumulative counters must sum to the class aggregates, and
  no flow may deliver more than it asked for;
* **stepper convergence** — halving the tick must converge: the change
  from one halving to the next shrinks (the population update is a
  consistent discretization, not a lucky constant);
* **hybrid bit-identity** — below the switchover threshold the hybrid
  dispatcher must reproduce the exact kernels byte for byte (including
  against the committed golden digests), because it *is* the exact
  kernels there.

Plus the configuration surface: ``REPRO_BACKEND`` validation at
context construction and CLI startup.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.fluid import DEFAULT_SWITCHOVER, FluidEngine, build_flow_classes
from repro.netsim import Link, Topology
from repro.netsim.flow import FlowSpec
from repro.tcp.simulate import MultiFlowSimulation
from repro.units import Gbps, MB, bytes_, ms, seconds


def chain_topology(n_routers: int = 3, n_hosts: int = 8,
                   rate_gbps: float = 10.0) -> Topology:
    """A short router chain with ``n_hosts`` hosts on each end router."""
    from repro.netsim.node import Router

    topo = Topology("fluid-chain")
    for i in range(n_routers):
        topo.add_node(Router(name=f"r{i}"))
    for i in range(1, n_routers):
        topo.connect(f"r{i - 1}", f"r{i}",
                     Link(rate=Gbps(rate_gbps), delay=ms(2),
                          mtu=bytes_(9000)))
    for h in range(n_hosts):
        topo.add_host(f"src{h}", nic_rate=Gbps(rate_gbps))
        topo.add_host(f"dst{h}", nic_rate=Gbps(rate_gbps))
        topo.connect(f"src{h}", "r0",
                     Link(rate=Gbps(rate_gbps), delay=ms(1),
                          mtu=bytes_(9000)))
        topo.connect(f"dst{h}", f"r{n_routers - 1}",
                     Link(rate=Gbps(rate_gbps), delay=ms(1),
                          mtu=bytes_(9000)))
    return topo


def make_specs(n_flows, streams, size_mb, stagger_s):
    return [FlowSpec(src=f"src{i % 8}", dst=f"dst{(i * 3 + 1) % 8}",
                     size=MB(size_mb), start=seconds(stagger_s * i),
                     parallel_streams=streams, label=f"f{i}")
            for i in range(n_flows)]


# -- byte conservation --------------------------------------------------------

@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(n_flows=st.integers(min_value=1, max_value=24),
       streams=st.integers(min_value=1, max_value=4),
       size_mb=st.floats(min_value=0.5, max_value=50.0),
       stagger=st.floats(min_value=0.0, max_value=0.4))
def test_fluid_conserves_bytes(n_flows, streams, size_mb, stagger):
    """Sum of per-flow delivered == sum of class aggregates, and no
    flow exceeds its request (conservation across birth/death)."""
    topo = chain_topology()
    sim = MultiFlowSimulation(topo, make_specs(n_flows, streams,
                                               size_mb, stagger),
                              backend="fluid")
    progress = sim.run(until=seconds(2))
    result = sim.fluid_result

    per_flow = float(result.delivered_bits.sum())
    per_class = float(result.class_delivered_bits.sum())
    np.testing.assert_allclose(per_flow, per_class, rtol=1e-9)

    for prog in progress.values():
        size = prog.spec.size.bits
        assert prog.delivered.bits <= size * (1 + 1e-9)
        if prog.finish_time is not None:
            np.testing.assert_allclose(prog.delivered.bits, size,
                                       rtol=1e-9)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(n_flows=st.integers(min_value=2, max_value=16),
       streams=st.integers(min_value=1, max_value=4))
def test_fluid_finished_flows_deliver_exactly(n_flows, streams):
    """Run to completion: every flow finishes and total delivered
    equals total requested exactly (the death bookkeeping clamps)."""
    topo = chain_topology()
    specs = make_specs(n_flows, streams, 2.0, 0.05)
    sim = MultiFlowSimulation(topo, specs, backend="fluid")
    progress = sim.run()
    requested = sum(s.size.bits for s in specs)
    delivered = sum(p.delivered.bits for p in progress.values())
    np.testing.assert_allclose(delivered, requested, rtol=1e-9)
    assert all(p.finish_time is not None for p in progress.values())


# -- stepper convergence ------------------------------------------------------

def _delivered_at_dt(dt_s: float, horizon_s: float) -> float:
    """One unbounded flow class on a private 10 Gbps link, advanced at
    ``dt_s``; returns delivered bits at the horizon."""
    specs = [FlowSpec(src="a", dst="b", size=None, parallel_streams=2,
                      label="probe")]
    from repro.tcp import Reno
    classes = build_flow_classes(
        specs, [(0,)], [Reno()],
        rtts=np.array([0.02]), mss_bits=np.array([8960.0 * 8]),
        rwnd_pkts=np.array([512.0]), loss_p=np.array([0.0]),
        rate_caps=np.array([np.inf]))
    engine = FluidEngine(classes, np.array([1e10]), np.array([1e9 * 0.1]),
                         dt_s=dt_s)
    result = engine.run(horizon_s=horizon_s, until_given=True)
    return float(result.delivered_bits.sum())


@pytest.mark.parametrize("horizon", [0.5, 1.0, 2.0])
def test_stepper_converges_under_dt_halving(horizon):
    """Successive tick halvings converge on the finest-step answer:
    the error against the smallest tick never grows as the tick
    shrinks, and the last halving lands within 0.5% of it."""
    rtt = 0.02
    values = [_delivered_at_dt(rtt / k, horizon) for k in (2, 4, 8, 16, 32)]
    finest = values[-1]
    errs = [abs(v - finest) for v in values[:-1]]
    # RTT-boundary rounding jitters each step by one window quantum, so
    # the error sequence is not strictly monotone; the convergence
    # contract is that every step is already within 0.5% of the finest
    # answer and the last halving gains at least as much accuracy as
    # boundary jitter allows.
    for err in errs:
        assert err <= 0.005 * finest, (errs, finest)
    assert errs[-1] <= errs[0] * 1.05 + 0.001 * finest, (errs, finest)


def test_stepper_monotone_in_horizon():
    """Delivered bytes are non-decreasing in the horizon (the
    population never un-delivers)."""
    values = [_delivered_at_dt(0.005, h) for h in (0.25, 0.5, 1.0, 2.0)]
    assert all(b >= a for a, b in zip(values, values[1:])), values


# -- hybrid dispatch ----------------------------------------------------------

@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(n_flows=st.integers(min_value=1, max_value=12),
       streams=st.integers(min_value=1, max_value=4),
       size_mb=st.floats(min_value=1.0, max_value=20.0))
def test_hybrid_below_switchover_bit_identical_to_python(
        n_flows, streams, size_mb):
    """Below the threshold, hybrid IS the exact tier: byte-identical
    delivered totals, loss counts and time series vs backend="python"."""
    outs = {}
    for backend in ("python", "hybrid"):
        topo = chain_topology()
        sim = MultiFlowSimulation(
            topo, make_specs(n_flows, streams, size_mb, 0.1),
            backend=backend)
        assert sim.backend in ("python", "numpy")
        outs[backend] = sim.run(until=seconds(1.5))
    a, b = outs["python"], outs["hybrid"]
    assert set(a) == set(b)
    for label in a:
        assert a[label].delivered.bits == b[label].delivered.bits
        assert a[label].loss_events == b[label].loss_events
        assert a[label].time_series == b[label].time_series
        assert a[label].finish_time == b[label].finish_time


def test_hybrid_above_switchover_takes_fluid():
    topo = chain_topology()
    n_flows = DEFAULT_SWITCHOVER // 2  # x4 streams -> 2x threshold
    sim = MultiFlowSimulation(topo, make_specs(n_flows, 4, 1.0, 0.001),
                              backend="hybrid")
    assert sim.backend == "fluid"
    progress = sim.run(until=seconds(1))
    assert sum(p.delivered.bits for p in progress.values()) > 0


def test_hybrid_custom_switchover():
    topo = chain_topology()
    sim = MultiFlowSimulation(topo, make_specs(4, 4, 1.0, 0.0),
                              backend="hybrid", switchover=16)
    assert sim.backend == "fluid"
    sim = MultiFlowSimulation(topo, make_specs(4, 4, 1.0, 0.0),
                              backend="hybrid", switchover=17)
    assert sim.backend == "numpy"


def test_hybrid_replays_golden_digests_byte_identically():
    """The committed golden ledger replays unchanged under
    backend="hybrid": small scenario populations stay on the exact
    kernels, so spec AND result digests must match bit for bit."""
    import json
    import pathlib

    from repro.experiment import ExperimentSpec, RunContext, run_experiment

    root = pathlib.Path(__file__).parent.parent
    golden = json.loads((root / "specs" / "golden.json").read_text())
    name = "linecard-softfail"
    spec = ExperimentSpec.from_file(str(root / "specs" /
                                        "linecard_softfail.json"))
    ctx = RunContext(backend="hybrid")
    result = run_experiment(spec, ctx, persist=False)
    assert result.manifest.spec_digest == golden[name]["spec_digest"]
    assert result.manifest.result_digest == golden[name]["result_digest"]
    assert result.manifest.backend == "hybrid"


# -- configuration surface ----------------------------------------------------

def test_run_context_rejects_unknown_backend():
    with pytest.raises(ConfigurationError):
        from repro.experiment import RunContext
        RunContext(backend="cuda")


def test_run_context_from_env_honors_repro_backend(monkeypatch):
    from repro.experiment import RunContext
    monkeypatch.setenv("REPRO_BACKEND", "fluid")
    ctx = RunContext.from_env()
    assert ctx.backend == "fluid"
    assert ctx.resolved_backend() == "fluid"
    monkeypatch.setenv("REPRO_BACKEND", "not-a-backend")
    with pytest.raises(ConfigurationError):
        RunContext.from_env()


def test_cli_invalid_repro_backend_is_exit_2(monkeypatch, capsys):
    from repro import cli
    monkeypatch.setenv("REPRO_BACKEND", "not-a-backend")
    code = cli.main(["designs"])
    assert code == cli.EXIT_BAD_INPUT
    err = capsys.readouterr().err
    assert "unknown simulation backend" in err


def test_cli_valid_repro_backend_still_runs(monkeypatch):
    from repro import cli
    monkeypatch.setenv("REPRO_BACKEND", "hybrid")
    assert cli.main(["designs"]) == 0


def test_manifest_records_resolved_backend(tmp_path):
    from repro.experiment import ExperimentSpec, RunContext, run_experiment
    import json
    import pathlib

    root = pathlib.Path(__file__).parent.parent
    spec = ExperimentSpec.from_file(str(root / "specs" /
                                        "fig1_tcp_loss_quick.json"))
    ctx = RunContext(backend="python", artifacts=tmp_path)
    result = run_experiment(spec, ctx)
    assert result.manifest.backend == "python"
    on_disk = json.loads((tmp_path / "manifest.json").read_text())
    assert on_disk["run"]["backend"] == "python"

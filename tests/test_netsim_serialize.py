"""Tests for topology JSON round-tripping."""

import json

import pytest

from repro.core import general_purpose_campus, simple_science_dmz
from repro.errors import ConfigurationError
from repro.netsim import Link, Topology, topology_from_dict, topology_to_dict
from repro.units import Gbps, ms


class TestRoundTrip:
    def test_simple_pair(self, clean_path_topology):
        data = topology_to_dict(clean_path_topology)
        rebuilt = topology_from_dict(data)
        assert rebuilt.name == clean_path_topology.name
        assert rebuilt.node_count == clean_path_topology.node_count
        assert rebuilt.link_count == clean_path_topology.link_count
        p1 = clean_path_topology.profile_between("a", "b")
        p2 = rebuilt.profile_between("a", "b")
        assert p2.capacity.bps == p1.capacity.bps
        assert p2.base_rtt.s == pytest.approx(p1.base_rtt.s)
        assert p2.mtu.bits == p1.mtu.bits

    def test_json_compatible(self, clean_path_topology):
        data = topology_to_dict(clean_path_topology)
        rebuilt = topology_from_dict(json.loads(json.dumps(data)))
        assert rebuilt.node_count == 2

    def test_stable_double_roundtrip(self):
        bundle = general_purpose_campus()
        once = topology_to_dict(bundle.topology)
        twice = topology_to_dict(topology_from_dict(once))
        assert once == twice

    def test_design_roundtrip_preserves_audit(self):
        bundle = simple_science_dmz()
        rebuilt = topology_from_dict(topology_to_dict(bundle.topology))
        # The rebuilt topology must preserve paths, firewall placement and
        # host profiles — i.e. the location + dedicated-systems patterns.
        science = rebuilt.path("dtn1", "wan",
                               forbid_node_kinds=("firewall",))
        assert science.node_names() == ["dtn1", "dmz-switch", "border", "wan"]
        campus = rebuilt.path("lab-server1", "wan")
        assert campus.traverses_kind("firewall")
        profile = rebuilt.node("dtn1").meta["host_profile"]
        assert profile.dedicated

    def test_firewall_settings_preserved(self):
        bundle = general_purpose_campus()
        fw = bundle.topology.node("campus-firewall")
        assert fw.sequence_checking
        rebuilt = topology_from_dict(topology_to_dict(bundle.topology))
        assert rebuilt.node("campus-firewall").sequence_checking

    def test_link_degradation_preserved(self, clean_path_topology):
        clean_path_topology.link_between("a", "b").degrade(
            loss_probability=1 / 22000)
        rebuilt = topology_from_dict(topology_to_dict(clean_path_topology))
        assert rebuilt.profile_between("a", "b").random_loss == pytest.approx(
            1 / 22000)

    def test_tags_preserved(self):
        topo = Topology("tagged")
        topo.add_host("a", nic_rate=Gbps(1), tags={"perfsonar", "dtn"})
        topo.add_host("b", nic_rate=Gbps(1))
        topo.connect("a", "b", Link(rate=Gbps(1), delay=ms(1),
                                    tags={"science"}))
        rebuilt = topology_from_dict(topology_to_dict(topo))
        assert rebuilt.node("a").has_tag("perfsonar")
        assert rebuilt.link_between("a", "b").has_tag("science")


class TestValidation:
    def test_version_checked(self):
        with pytest.raises(ConfigurationError):
            topology_from_dict({"format_version": 99, "name": "x",
                                "nodes": [], "links": []})

    def test_unknown_node_kind(self):
        with pytest.raises(ConfigurationError):
            topology_from_dict({
                "format_version": 1, "name": "x",
                "nodes": [{"name": "q", "kind": "quantum-repeater"}],
                "links": [],
            })

    def test_storage_type_preserved_by_name(self):
        bundle = simple_science_dmz()
        rebuilt = topology_from_dict(topology_to_dict(bundle.topology))
        storage = rebuilt.node("dtn1").meta["host_profile"].storage
        assert type(storage).__name__ == "RaidArray"

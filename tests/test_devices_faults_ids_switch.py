"""Tests for fault injection, IDS, and the switch fabric (§3.3, §6.1)."""

import pytest

from repro.devices.faults import (
    ESNET_LINE_CARD_LOSS,
    DirtyOptics,
    DuplexMismatch,
    FailingLineCard,
    FaultInjector,
    ManagementCpuForwarding,
)
from repro.devices.ids import IdsMode, IntrusionDetectionSystem
from repro.devices.switchfab import SwitchFabric, SwitchingMode
from repro.errors import ConfigurationError
from repro.netsim import Link, Simulator, Topology
from repro.netsim.node import Router
from repro.netsim.packetsim import BurstySource
from repro.units import DataRate, Gbps, KB, MB, Mbps, bytes_, minutes, ms


class TestFaultModels:
    def test_line_card_default_matches_paper(self):
        card = FailingLineCard()
        assert card.loss_rate == pytest.approx(1 / 22000)
        assert card.element_loss_probability() == ESNET_LINE_CARD_LOSS
        assert not card.visible_to_counters

    def test_dirty_optics_scales_with_packet_size(self):
        small = DirtyOptics(bit_error_rate=1e-9, packet_size=bytes_(1500))
        jumbo = DirtyOptics(bit_error_rate=1e-9, packet_size=bytes_(9000))
        assert jumbo.element_loss_probability() > small.element_loss_probability()

    def test_management_cpu_caps_capacity(self):
        slow = ManagementCpuForwarding(cpu_rate=Mbps(300))
        assert slow.element_capacity().mbps == 300
        assert slow.element_loss_probability() == 0.0
        assert slow.element_latency().ms == pytest.approx(2)

    def test_duplex_mismatch(self):
        dm = DuplexMismatch()
        assert dm.element_loss_probability() == pytest.approx(0.02)
        assert dm.element_capacity().mbps == 100

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FailingLineCard(loss_rate=1.5)
        with pytest.raises(ConfigurationError):
            DirtyOptics(bit_error_rate=-1)


class TestFaultInjector:
    def build(self):
        topo = Topology("t")
        topo.add_host("a", nic_rate=Gbps(10))
        topo.add_host("b", nic_rate=Gbps(10))
        core = topo.add_node(Router(name="core"))
        topo.connect("a", "core", Link(rate=Gbps(10), delay=ms(1)))
        topo.connect("core", "b", Link(rate=Gbps(10), delay=ms(1)))
        return topo

    def test_inject_now_affects_profile(self):
        topo = self.build()
        sim = Simulator(seed=0)
        injector = FaultInjector(sim)
        assert topo.profile_between("a", "b").random_loss == 0.0
        injector.inject_now(topo.node("core"), FailingLineCard())
        assert topo.profile_between("a", "b").random_loss == pytest.approx(
            ESNET_LINE_CARD_LOSS)

    def test_scheduled_inject_and_clear(self):
        topo = self.build()
        sim = Simulator(seed=0)
        injector = FaultInjector(sim)
        card = FailingLineCard()
        injector.inject_at(minutes(5), topo.node("core"), card)
        sim.run_until(minutes(4).s)
        assert topo.profile_between("a", "b").random_loss == 0.0
        sim.run_until(minutes(6).s)
        assert topo.profile_between("a", "b").random_loss > 0
        record = injector.history[0]
        injector.clear(record, topo.node("core"))
        assert topo.profile_between("a", "b").random_loss == 0.0
        assert not record.active

    def test_ground_truth_visibility(self):
        topo = self.build()
        injector = FaultInjector(Simulator(seed=0))
        injector.inject_now(topo.node("core"), FailingLineCard())
        injector.inject_now(topo.node("core"), DuplexMismatch())
        invisible = injector.invisible_faults()
        assert len(injector.active_faults()) == 2
        assert len(invisible) == 1
        assert isinstance(invisible[0].fault, FailingLineCard)

    def test_double_clear_rejected(self):
        topo = self.build()
        injector = FaultInjector(Simulator(seed=0))
        record = injector.inject_now(topo.node("core"), FailingLineCard())
        injector.clear(record, topo.node("core"))
        with pytest.raises(ConfigurationError):
            injector.clear(record, topo.node("core"))


class TestIds:
    def test_passive_mode_is_invisible(self):
        ids = IntrusionDetectionSystem(mode=IdsMode.PASSIVE)
        assert ids.element_capacity() is None
        assert ids.element_loss_probability() == 0.0
        assert ids.element_latency().s == 0.0

    def test_inline_fail_closed_drops_overload(self):
        ids = IntrusionDetectionSystem(mode=IdsMode.INLINE, fail_open=False,
                                       inspection_capacity=Gbps(1),
                                       offered_load=Gbps(4))
        assert ids.element_capacity().gbps == 1
        assert ids.element_loss_probability() == pytest.approx(0.75)

    def test_inline_fail_open_passes_uninspected(self):
        ids = IntrusionDetectionSystem(mode=IdsMode.INLINE, fail_open=True,
                                       inspection_capacity=Gbps(1),
                                       offered_load=Gbps(4))
        assert ids.element_capacity() is None
        assert ids.element_loss_probability() == 0.0
        assert ids.blind_fraction == pytest.approx(0.75)

    def test_signatures_raise_alerts(self):
        ids = IntrusionDetectionSystem()
        ids.add_signature("ssh-scan", lambda s, d, p: p == 22)
        alerts = ids.observe("attacker", "dtn", 22, time=10.0)
        assert len(alerts) == 1
        assert alerts[0].signature == "ssh-scan"
        assert ids.observe("peer", "dtn", 50000) == []
        assert len(ids.alerts) == 1

    def test_signature_needs_label(self):
        ids = IntrusionDetectionSystem()
        with pytest.raises(ConfigurationError):
            ids.add_signature("", lambda s, d, p: True)


class TestSwitchFabric:
    def sources(self, n=9, mean=Mbps(600)):
        return [BurstySource(name=f"s{i}", line_rate=Gbps(1),
                             mean_rate=mean, burst_size=KB(256))
                for i in range(n)]

    def test_idle_fabric_lossless(self):
        fab = SwitchFabric()
        assert fab.fan_in_loss() == 0.0
        assert fab.element_loss_probability() == 0.0

    def test_flip_bug_engages_under_load(self):
        fab = SwitchFabric(flip_bug=True, flip_threshold=0.4)
        fab.set_offered_load(self.sources())
        assert fab.effective_mode is SwitchingMode.STORE_AND_FORWARD
        assert fab.flipped
        assert fab.effective_service_rate.bps < fab.egress_rate.bps
        assert fab.effective_buffer.bits < fab.port_buffer.bits

    def test_flip_bug_dormant_at_low_load(self):
        fab = SwitchFabric(flip_bug=True, flip_threshold=0.4)
        fab.set_offered_load(self.sources(n=2, mean=Mbps(100)))
        assert fab.effective_mode is SwitchingMode.CUT_THROUGH
        assert not fab.flipped

    def test_flipped_fabric_loses_packets(self):
        fab = SwitchFabric(flip_bug=True, port_buffer=KB(384))
        fab.set_offered_load(self.sources())
        assert fab.fan_in_loss() > 0.001

    def test_vendor_fix_restores_service(self):
        fab = SwitchFabric(flip_bug=True, port_buffer=KB(384))
        fab.set_offered_load(self.sources())
        broken_loss = fab.fan_in_loss()
        fab.apply_vendor_fix()
        assert fab.fan_in_loss() < broken_loss
        assert fab.effective_service_rate.bps == fab.egress_rate.bps

    def test_deep_buffers_prevent_fanin_loss(self):
        shallow = SwitchFabric(port_buffer=KB(128), egress_rate=Gbps(4))
        deep = SwitchFabric(port_buffer=MB(64), egress_rate=Gbps(4))
        srcs = self.sources()
        shallow.set_offered_load(srcs)
        deep.set_offered_load(srcs)
        assert deep.fan_in_loss() < shallow.fan_in_loss()

    def test_store_and_forward_adds_latency(self):
        cut = SwitchFabric(mode=SwitchingMode.CUT_THROUGH)
        sf = SwitchFabric(mode=SwitchingMode.STORE_AND_FORWARD)
        assert sf.element_latency().s > cut.element_latency().s

    def test_element_buffer_reports_effective(self):
        fab = SwitchFabric(flip_bug=True, port_buffer=KB(384))
        fab.set_offered_load(self.sources())
        assert fab.element_buffer().bits == fab.effective_buffer.bits

    def test_clear_offered_load(self):
        fab = SwitchFabric(flip_bug=True)
        fab.set_offered_load(self.sources())
        fab.clear_offered_load()
        assert fab.fan_in_loss() == 0.0

    def test_describe(self):
        fab = SwitchFabric(flip_bug=True)
        assert "flip bug" in fab.describe()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SwitchFabric(egress_rate=DataRate(0))
        with pytest.raises(ConfigurationError):
            SwitchFabric(flip_threshold=2.0)

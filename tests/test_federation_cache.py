"""Federation cache tiers: property tests and the conservation oracle.

Three layers of assurance over :mod:`repro.federation`:

* hypothesis property tests on :class:`~repro.devices.cache.CacheDevice`
  and :func:`~repro.federation.sim.simulate_requests` — byte
  conservation across tiers, capacity never exceeded under either
  eviction policy, LRU hit count monotone in cache size for a fixed
  unit-size trace (the stack-algorithm inclusion property);
* unit tests on the federation build: mutual-consent peering,
  stub-never-transits routing policy, tier chains, stitched circuits;
* the chaos acceptance story: a 16-schedule campaign on the
  ``federated-wan`` design passes ``cache-bytes-conserved`` clean,
  an intentionally broken cache (``cachebug`` fault) violates it, and
  ddmin shrinks the violation to a minimal single-fault repro spec.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.cache import CACHE_POLICIES, CacheDevice
from repro.devices.faults import CacheAccountingBug
from repro.errors import ConfigurationError, RoutingError
from repro.experiment import RunContext, run_experiment
from repro.experiment.registry import build_design, build_fault
from repro.federation import (
    DomainSpec,
    FederationSpec,
    build_federation,
    default_federation_spec,
    simulate_requests,
)
from repro.federation.runner import _federation_point
from repro.units import GB, bytes_
from repro.workloads.cachepop import CacheRequest, working_set_trace, \
    zipf_weights

import numpy as np


# -- strategies ---------------------------------------------------------------

object_ids = st.integers(0, 24).map(lambda i: f"o{i:02d}")
sizes = st.integers(1, 60)
accesses = st.lists(st.tuples(object_ids, sizes), min_size=1, max_size=120)
policies = st.sampled_from(CACHE_POLICIES)


def _fixed_sizes(trace):
    """Force each object to one consistent size (first occurrence wins);
    caches rely on per-object sizes being stable."""
    first = {}
    out = []
    for obj, size in trace:
        size = first.setdefault(obj, size)
        out.append((obj, size))
    return out


# -- CacheDevice properties ---------------------------------------------------

class TestCacheDeviceProperties:
    @settings(max_examples=120, deadline=None)
    @given(trace=accesses, capacity=st.integers(1, 300), policy=policies)
    def test_books_balance_and_capacity_held(self, trace, capacity, policy):
        cache = CacheDevice("c", bytes_(capacity), policy=policy)
        for obj, size in _fixed_sizes(trace):
            cache.request(obj, size)
            assert cache.occupancy_bytes <= cache.capacity_bytes
        ledger = cache.ledger()
        assert ledger["hits"] + ledger["misses"] == ledger["requests"]
        assert ledger["occupancy_bytes"] == \
            ledger["bytes_filled"] - ledger["bytes_evicted"]
        assert ledger["peak_occupancy_bytes"] <= ledger["capacity_bytes"]
        assert ledger["bytes_evicted"] <= ledger["bytes_filled"]

    @settings(max_examples=100, deadline=None)
    @given(trace=st.lists(object_ids, min_size=1, max_size=150),
           small=st.integers(1, 30), extra=st.integers(0, 30))
    def test_lru_hit_count_monotone_in_capacity(self, trace, small, extra):
        """For a fixed unit-size trace, a bigger LRU cache never hits
        less — LRU is a stack algorithm, so the small cache's content
        is always a subset of the big one's."""
        small_cache = CacheDevice("small", bytes_(small), policy="lru")
        big_cache = CacheDevice("big", bytes_(small + extra), policy="lru")
        for obj in trace:
            small_cache.request(obj, 1)
            big_cache.request(obj, 1)
        assert big_cache.hits >= small_cache.hits

    @settings(max_examples=60, deadline=None)
    @given(trace=accesses, policy=policies)
    def test_oversized_objects_bypass(self, trace, policy):
        cache = CacheDevice("tiny", bytes_(0), policy=policy)
        for obj, size in trace:
            assert cache.request(obj, size) is False
        assert cache.hits == 0
        assert cache.occupancy_bytes == 0

    def test_lfu_prefers_evicting_cold_objects(self):
        cache = CacheDevice("lfu", bytes_(2), policy="lfu")
        for _ in range(5):
            cache.request("hot", 1)
        cache.request("warm", 1)
        cache.request("cold", 1)  # store full: evicts the colder one
        assert "hot" in cache
        assert "cold" in cache
        assert "warm" not in cache

    def test_corrupt_accounting_leaks_served_bytes_only(self):
        cache = CacheDevice("c", bytes_(100))
        cache.request("a", 10)
        cache.corrupt_accounting = True
        assert cache.request("a", 10) is True  # still serves the hit
        assert cache.bytes_served == 0         # but the books lie
        assert cache.hits == 1

    def test_reset_restores_cold_state(self):
        cache = CacheDevice("c", bytes_(100))
        cache.request("a", 10)
        cache.request("a", 10)
        cache.corrupt_accounting = True
        cache.reset()
        assert len(cache) == 0
        assert cache.ledger()["requests"] == 0
        assert cache.corrupt_accounting is False

    def test_rejects_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            CacheDevice("c", bytes_(10), policy="fifo")


# -- multi-tier conservation --------------------------------------------------

chain_shapes = st.lists(st.integers(10, 200), min_size=0, max_size=3)


class TestTierConservation:
    @settings(max_examples=80, deadline=None)
    @given(trace=accesses, site=st.integers(5, 120),
           regional=st.integers(5, 300), policy=policies,
           data=st.data())
    def test_bytes_conserved_across_shared_tiers(self, trace, site,
                                                 regional, policy, data):
        """Two clients behind separate site caches sharing one regional
        tier: origin + every cache's served bytes == delivered bytes,
        whatever the trace."""
        shared = CacheDevice("regional", bytes_(regional), policy=policy)
        chains = {
            "a": [CacheDevice("site-a", bytes_(site)), shared],
            "b": [CacheDevice("site-b", bytes_(site)), shared],
        }
        requests = [
            CacheRequest(round=0, client=data.draw(st.sampled_from("ab")),
                         object_id=obj, size_bytes=size)
            for obj, size in _fixed_sizes(trace)
        ]
        ledger = simulate_requests(chains, requests)
        served = sum(c["bytes_served"] for c in ledger["caches"])
        assert ledger["origin_bytes"] + served == ledger["delivered_bytes"]
        assert ledger["byte_savings"] == served
        for cache in ledger["caches"]:
            assert cache["hits"] + cache["misses"] == cache["requests"]
            assert cache["occupancy_bytes"] <= cache["capacity_bytes"]

    def test_empty_chain_sends_everything_to_origin(self):
        requests = [CacheRequest(0, "a", "x", 7), CacheRequest(0, "a", "x", 7)]
        ledger = simulate_requests({"a": []}, requests)
        assert ledger["origin_bytes"] == ledger["delivered_bytes"] == 14
        assert ledger["hit_rate"] == 0.0

    def test_unknown_client_rejected(self):
        with pytest.raises(ConfigurationError):
            simulate_requests({"a": []}, [CacheRequest(0, "b", "x", 1)])


# -- workload shape -----------------------------------------------------------

class TestWorkload:
    def test_zipf_weights_normalized_and_skewed(self):
        w = zipf_weights(50, 1.2)
        assert w.sum() == pytest.approx(1.0)
        assert w[0] > w[1] > w[-1]

    def test_trace_sizes_stable_per_object(self):
        rng = np.random.default_rng(0)
        trace = working_set_trace(["a", "b"], rng=rng, n_objects=30,
                                  requests_per_round=50, rounds=3)
        sizes = {}
        for req in trace:
            assert sizes.setdefault(req.object_id, req.size_bytes) \
                == req.size_bytes
        assert max(r.round for r in trace) == 2

    def test_trace_deterministic_in_seed(self):
        t1 = working_set_trace(["a"], rng=np.random.default_rng(5))
        t2 = working_set_trace(["a"], rng=np.random.default_rng(5))
        assert t1 == t2


# -- federation build and policy ----------------------------------------------

class TestFederationPolicy:
    def test_asymmetric_peering_rejected(self):
        spec = FederationSpec(
            name="asym", seed=0,
            domains=(
                DomainSpec(name="lab", peers=("r",)),
                DomainSpec(name="r", role="transit", peers=("lab", "u")),
                DomainSpec(name="u", peers=()),  # r lists u, u doesn't
            ),
            origin="lab")
        with pytest.raises(ConfigurationError, match="asymmetric"):
            build_federation(spec)

    def test_stub_never_transits(self):
        """The only raw path u1 -> lab runs through stub u2; policy
        routing must refuse it rather than transit a campus."""
        spec = FederationSpec(
            name="stub-transit", seed=0,
            domains=(
                DomainSpec(name="lab", peers=("u2",)),
                DomainSpec(name="u1", peers=("u2",)),
                DomainSpec(name="u2", peers=("u1", "lab")),
            ),
            origin="lab")
        fed = build_federation(spec)
        assert fed.route("u2", "lab") == ["u2", "lab"]
        with pytest.raises(RoutingError, match="stubs never transit"):
            fed.route("u1", "lab")

    def test_default_federation_routes_and_chains(self):
        fed = build_federation(default_federation_spec())
        assert fed.route("uni-a", "lab") == ["uni-a", "regional-east", "lab"]
        assert fed.route("uni-c", "lab") == ["uni-c", "regional-west", "lab"]
        assert [c.name for c in fed.tier_chain("uni-b")] == \
            ["uni-b-cache", "regional-east-cache"]
        # Origin-side caches are never in a chain; lab has none anyway.
        assert all(c.name != "lab-cache" for c in fed.tier_chain("uni-a"))

    def test_cache_scale_multiplies_capacity(self):
        base = build_federation(default_federation_spec())
        doubled = build_federation(default_federation_spec(), scale=2.0)
        for name, cache in base.caches().items():
            assert doubled.caches()[name].capacity_bytes \
                == 2 * cache.capacity_bytes

    def test_circuit_profile_stitches_across_domains(self):
        spec = default_federation_spec()
        fed = build_federation(spec)
        profile = fed.circuit_profile("uni-a")
        assert profile.capacity.gbps == pytest.approx(spec.link_gbps / 2.0)
        assert profile.base_rtt.s > 0
        assert profile.random_loss == 0.0
        # Reservation was released: the calendar holds nothing.
        for domain in fed.domains.values():
            assert domain.oscars.active() == []

    def test_spec_requires_known_origin_and_client(self):
        with pytest.raises(ConfigurationError):
            FederationSpec(name="x", domains=(DomainSpec(name="a"),
                                              DomainSpec(name="b")),
                           origin="nope")
        with pytest.raises(ConfigurationError, match="stub domain"):
            FederationSpec(
                name="x",
                domains=(DomainSpec(name="a"),
                         DomainSpec(name="t", role="transit",
                                    peers=("a",))),
                origin="a")

    def test_spec_round_trips_through_file(self, tmp_path):
        from repro.experiment import ExperimentSpec
        spec = default_federation_spec(cache_scales=(0.5, 1.0))
        path = tmp_path / "fed.json"
        spec.save(path)
        loaded = ExperimentSpec.from_file(path)
        assert loaded == spec
        assert loaded.digest() == spec.digest()


# -- the headline experiment --------------------------------------------------

class TestHitRateCurve:
    def test_hit_rate_curve_and_byte_savings(self):
        """The cache-placement sweep: hit rate grows with cache size and
        byte savings are positive for a Zipf-skewed (alpha >= 1) load."""
        spec = default_federation_spec(
            "curve", seed=3, cache_scales=(0.25, 1.0, 4.0))
        points = [_federation_point(spec.to_json(), s)
                  for s in spec.cache_scales]
        hit_rates = [p["hit_rate"] for p in points]
        assert hit_rates == sorted(hit_rates)
        assert hit_rates[-1] > hit_rates[0]
        assert all(p["byte_savings"] > 0 for p in points)
        for p in points:
            ledger = p["ledger"]
            served = sum(c["bytes_served"] for c in ledger["caches"])
            assert ledger["origin_bytes"] + served \
                == ledger["delivered_bytes"]

    def test_trace_identical_across_scales(self):
        """Cache scale must not leak into the demand: every sweep point
        replays byte-identical requests."""
        spec = default_federation_spec("fixed-trace", seed=9)
        lo = _federation_point(spec.to_json(), 0.5)
        hi = _federation_point(spec.to_json(), 2.0)
        assert lo["ledger"]["delivered_bytes"] \
            == hi["ledger"]["delivered_bytes"]
        assert lo["ledger"]["requests"] == hi["ledger"]["requests"]

    def test_run_experiment_end_to_end(self):
        spec = default_federation_spec(
            "fed-e2e", seed=2, cache_scales=(0.5, 1.0))
        result = run_experiment(spec, RunContext(workers=1, cache=None),
                                persist=False)
        assert result.manifest.spec_digest == spec.digest()
        assert len(result.payload["curve"]) == 2
        assert result.manifest.summary["byte_savings_max"] > 0
        assert result.value.hit_rates() == \
            [p["hit_rate"] for p in result.payload["curve"]]

    def test_sweep_target_hit_rate_point(self):
        from repro.federation.runner import federation_hit_rate
        sparse = federation_hit_rate(5.0, 1.2, seed=4)
        dense = federation_hit_rate(400.0, 1.2, seed=4)
        assert 0.0 <= sparse <= dense <= 1.0
        assert dense > 0.0


# -- the chaos acceptance story -----------------------------------------------

def _federation_campaign(name, seed, kinds, *, schedules=16, shrink=False):
    from repro.chaos.spec import CampaignSpec, FaultSpaceSpec
    from repro.experiment.spec import MeshSpec
    return CampaignSpec(
        name=name, seed=seed, design="federated-wan",
        schedules=schedules, until_s=1200.0, shrink=shrink, max_shrink=1,
        mesh=MeshSpec(owamp_interval_s=120.0, bwctl_interval_s=600.0,
                      owamp_packets=2000),
        space=FaultSpaceSpec(kinds=kinds, min_faults=1, max_faults=2,
                             onset_min_s=100.0, onset_max_s=600.0),
    )


class TestCacheChaosOracle:
    def test_registered_as_default_oracle(self):
        from repro.chaos.oracles import default_oracles
        assert "cache-bytes-conserved" in default_oracles()

    def test_cachebug_fault_is_buildable_and_inert_on_path(self):
        fault = build_fault("cachebug")
        assert isinstance(fault, CacheAccountingBug)
        assert fault.element_loss_probability() == 0.0
        assert fault.element_capacity() is None

    def test_federated_design_declares_caches(self):
        bundle = build_design("federated-wan")
        assert set(bundle.extras["tier_chains"]) == \
            {"uni-a", "uni-b", "uni-c"}
        for chain in bundle.extras["tier_chains"].values():
            for node in chain:
                assert node in bundle.extras["caches"]
                assert bundle.topology.has_node(node)

    def test_oracle_passes_honest_ledger_and_fails_corrupt_one(self):
        from repro.chaos.oracles import (RunObservation,
                                         oracle_cache_bytes_conserved)
        cache = CacheDevice("c", GB(1))
        cache.request("a", 100)
        cache.request("a", 100)
        ledger = {
            "delivered_bytes": 200, "origin_bytes": 100,
            "cache_served_bytes": 100, "hit_rate": 0.5,
            "caches": [cache.ledger()],
        }
        obs = RunObservation(spec=None, outcome=None, timeline=None,
                             caches=ledger)
        assert oracle_cache_bytes_conserved(obs) == []
        ledger["origin_bytes"] = 50  # cook the books
        assert any("not conserved" in v
                   for v in oracle_cache_bytes_conserved(obs))
        # Designs without caches pass vacuously.
        assert oracle_cache_bytes_conserved(
            RunObservation(spec=None, outcome=None, timeline=None)) == []

    def test_clean_16_schedule_campaign_conserves_bytes(self):
        """Acceptance: the oracle holds over a 16-schedule campaign of
        ordinary (non-cache) faults on the federation design."""
        spec = _federation_campaign("fed-clean", 13,
                                    ("linecard", "optics", "cpu"))
        result = run_experiment(spec, RunContext(workers=1, cache=None),
                                persist=False)
        report = result.payload
        assert report["schedules"] == 16
        assert "cache-bytes-conserved" not in report["oracle_violations"]
        for run in report["runs"]:
            assert run["summary"]["cache"]["delivered_bytes"] > 0

    def test_broken_cache_violates_and_shrinks_to_minimal_repro(self):
        """Acceptance: an intentionally broken cache violates the
        conservation oracle and ddmin shrinks the schedule to a minimal
        repro spec that still carries (only) a cachebug fault."""
        spec = _federation_campaign("fed-broken", 17, ("cachebug",),
                                    schedules=4, shrink=True)
        result = run_experiment(spec, RunContext(workers=1, cache=None),
                                persist=False)
        report = result.payload
        violated = report["oracle_violations"].get("cache-bytes-conserved")
        assert violated, "cachebug campaign must violate conservation"
        shrunk = [run for run in report["runs"] if run["minimal"]]
        assert shrunk, "a failing schedule must have been shrunk"
        minimal = shrunk[0]["minimal"]
        assert len(minimal["faults"]) == 1
        assert minimal["faults"][0]["kind"] == "cachebug"
        # The minimal spec is itself runnable and still violates.
        from repro.chaos.runner import _campaign_point
        from repro.exec.seeding import canonical_json
        minimal_spec = next(r.minimal for r in result.value.records
                            if r.minimal is not None)
        replay = _campaign_point(
            minimal_spec.to_json(),
            canonical_json([["cache-bytes-conserved", {}]]), "null")
        assert replay["violations"].get("cache-bytes-conserved")

"""Tests for the Mathis model and window arithmetic (paper Eq. 1 and Eq. 2)."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.tcp.mathis import (
    MATHIS_CONSTANT_RENO,
    loss_rate_for_throughput,
    mathis_throughput,
    mathis_throughput_array,
    packets_lost_per_second,
    packets_per_second,
    required_window,
    window_limited_throughput,
)
from repro.units import Gbps, KB, Mbps, bytes_, ms, seconds


class TestEquationOne:
    def test_inverse_sqrt_loss_scaling(self):
        mss, rtt = bytes_(9000), ms(50)
        r1 = mathis_throughput(mss, rtt, 1e-4)
        r2 = mathis_throughput(mss, rtt, 4e-4)
        assert r1.bps / r2.bps == pytest.approx(2.0)

    def test_inverse_rtt_scaling(self):
        mss, p = bytes_(9000), 1e-4
        r1 = mathis_throughput(mss, ms(10), p)
        r2 = mathis_throughput(mss, ms(100), p)
        assert r1.bps / r2.bps == pytest.approx(10.0)

    def test_linear_mss_scaling(self):
        # Why the paper's tests use 9 KB jumbo frames: 6x the MSS is 6x
        # the loss-limited throughput.
        rtt, p = ms(50), 1e-4
        small = mathis_throughput(bytes_(1460), rtt, p)
        jumbo = mathis_throughput(bytes_(8760), rtt, p)
        assert jumbo.bps / small.bps == pytest.approx(6.0)

    def test_paper_line_card_scenario(self):
        # 1/22000 loss on a cross-country (~50ms) path with jumbo frames:
        # hundreds of Mbps, not 10 Gbps — the figure-1 collapse.
        rate = mathis_throughput(bytes_(8960), ms(50), 1 / 22000)
        assert 100 < rate.mbps < 400

    def test_reno_constant_option(self):
        plain = mathis_throughput(bytes_(1460), ms(10), 1e-3)
        reno = mathis_throughput(bytes_(1460), ms(10), 1e-3,
                                 constant=MATHIS_CONSTANT_RENO)
        assert reno.bps / plain.bps == pytest.approx(math.sqrt(1.5))

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            mathis_throughput(bytes_(1460), ms(10), 0.0)
        with pytest.raises(ConfigurationError):
            mathis_throughput(bytes_(1460), ms(10), 1.5)
        with pytest.raises(ConfigurationError):
            mathis_throughput(bytes_(1460), seconds(0), 1e-3)

    def test_array_version_matches_scalar(self):
        rtts = np.array([0.01, 0.05, 0.1])
        arr = mathis_throughput_array(bytes_(9000), rtts, 1e-4)
        for rtt_s, v in zip(rtts, arr):
            scalar = mathis_throughput(bytes_(9000), seconds(rtt_s), 1e-4)
            assert v == pytest.approx(scalar.bps)

    def test_array_zero_rtt_is_infinite(self):
        arr = mathis_throughput_array(bytes_(9000), np.array([0.0]), 1e-4)
        assert np.isinf(arr[0])


class TestEquationTwo:
    def test_penn_state_window(self):
        # Eq 2 exactly: 1 Gbps at 10 ms needs 1.25 MB.
        assert required_window(Gbps(1), ms(10)).megabytes == pytest.approx(1.25)

    def test_64k_window_limit_is_50mbps(self):
        # The §6.2 observation: 64 KB at 10 ms -> ~52 Mbps (~"around 50Mbps").
        rate = window_limited_throughput(KB(64), ms(10))
        assert rate.mbps == pytest.approx(52.4, rel=0.01)

    def test_window_20x_ratio(self):
        # "This theoretical value was 20 times less than the required size."
        needed = required_window(Gbps(1), ms(10))
        assert needed.bits / KB(64).bits == pytest.approx(20.0, rel=0.05)

    def test_window_limited_requires_positive_rtt(self):
        with pytest.raises(ConfigurationError):
            window_limited_throughput(KB(64), seconds(0))


class TestInversion:
    def test_loss_rate_roundtrip(self):
        mss, rtt = bytes_(9000), ms(50)
        p = loss_rate_for_throughput(Gbps(1), mss, rtt)
        back = mathis_throughput(mss, rtt, p)
        assert back.gbps == pytest.approx(1.0, rel=1e-9)

    def test_loss_rate_capped_at_one(self):
        p = loss_rate_for_throughput(Mbps(0.001), bytes_(9000), ms(500))
        assert p == 1.0

    @given(st.floats(min_value=1e6, max_value=1e10),
           st.floats(min_value=1e-3, max_value=0.5))
    def test_inversion_consistent(self, target_bps, rtt_s):
        from repro.units import DataRate
        mss = bytes_(9000)
        p = loss_rate_for_throughput(DataRate(target_bps), mss,
                                     seconds(rtt_s))
        if p < 1.0:
            back = mathis_throughput(mss, seconds(rtt_s), p)
            assert back.bps == pytest.approx(target_bps, rel=1e-6)


class TestPacketRates:
    def test_paper_packets_per_second(self):
        # §2: 10 Gbps at peak efficiency = 812,744 frames/s (1538 B frames).
        fps = packets_per_second(Gbps(10), bytes_(1538))
        assert round(fps) == 812744

    def test_paper_lost_packets_per_second(self):
        # §2: 1/22000 of those = ~37 packets lost per second.
        lost = packets_lost_per_second(Gbps(10), bytes_(1538), 1 / 22000)
        assert round(lost) == 37

    def test_paper_device_level_loss_rate(self):
        # §2: the loss amounts to only ~450 Kbps of traffic on the device.
        lost = packets_lost_per_second(Gbps(10), bytes_(1538), 1 / 22000)
        kbps = lost * 1538 * 8 / 1e3
        assert kbps == pytest.approx(455, rel=0.03)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            packets_per_second(Gbps(10), bytes_(0))
        with pytest.raises(ConfigurationError):
            packets_lost_per_second(Gbps(10), bytes_(1538), 2.0)

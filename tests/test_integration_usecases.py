"""Integration tests: the paper's case studies as end-to-end assertions.

Each test builds the relevant design, runs the transfer/measurement
workflow through the public API, and asserts the *shape* of the paper's
result — who wins, by roughly what factor.
"""

import numpy as np
import pytest

from repro.core import (
    campus_with_rcnet,
    general_purpose_campus,
    simple_science_dmz,
    supercomputer_center,
)
from repro.devices.faults import FailingLineCard, FaultInjector
from repro.dtn import Dataset, TransferPlan, tool_by_name
from repro.netsim import Simulator
from repro.netsim.packetsim import BurstySource
from repro.perfsonar import (
    AlertRule,
    MeasurementArchive,
    MeshConfig,
    MeshSchedule,
    ThresholdAlerter,
    localize_loss,
)
from repro.tcp import TcpConnection, algorithm_by_name
from repro.units import GB, Gbps, KB, Mbps, TB, minutes, ms, seconds
from repro.workloads import CARBON14_INPUTS, NOAA_GEFS_SAMPLE


class TestDmzVsBaselineTransfer:
    """The headline comparison: same dataset, baseline campus vs Science DMZ."""

    def test_dmz_order_of_magnitude_faster(self):
        ds = Dataset("sample", GB(50), 50)
        rng = np.random.default_rng(1)

        baseline = general_purpose_campus()
        base_report = TransferPlan(
            baseline.topology, baseline.remote_dtn, "lab-server1",
            ds, "ftp").execute(rng)

        dmz = simple_science_dmz()
        dmz_report = TransferPlan(
            dmz.topology, dmz.remote_dtn, "dtn1", ds, "globus",
            policy=dmz.science_policy).execute(rng)

        speedup = base_report.duration.s / dmz_report.duration.s
        assert speedup > 20, f"only {speedup:.1f}x"

    def test_dmz_does_not_change_enterprise_path(self):
        dmz = simple_science_dmz()
        ent = dmz.topology.path("lab-server1", "wan")
        assert ent.traverses_kind("firewall")


class TestNoaaShape:
    """§6.3: FTP behind firewall ~1-2 MB/s; DTN + Globus ~hundreds of MB/s,
    239.5 GB in minutes; overall ~200x."""

    def test_ftp_behind_firewall_crawls(self):
        bundle = general_purpose_campus()
        rng = np.random.default_rng(2)
        report = TransferPlan(bundle.topology, bundle.remote_dtn,
                              "lab-server1", NOAA_GEFS_SAMPLE,
                              "ftp").execute(rng)
        assert 0.5 < report.mean_throughput.MBps < 5

    def test_dtn_transfer_in_minutes(self):
        bundle = simple_science_dmz()
        report = TransferPlan(bundle.topology, bundle.remote_dtn, "dtn1",
                              NOAA_GEFS_SAMPLE, "globus",
                              policy=bundle.science_policy).execute()
        assert report.duration.minutes < 30
        assert report.mean_throughput.MBps > 100

    def test_speedup_around_two_orders_of_magnitude(self):
        rng = np.random.default_rng(3)
        slow = TransferPlan(general_purpose_campus().topology, "remote-dtn",
                            "lab-server1", NOAA_GEFS_SAMPLE, "ftp").execute(rng)
        bundle = simple_science_dmz()
        fast = TransferPlan(bundle.topology, "remote-dtn", "dtn1",
                            NOAA_GEFS_SAMPLE, "globus",
                            policy=bundle.science_policy).execute()
        speedup = slow.duration.s / fast.duration.s
        assert 50 < speedup < 1000  # paper: "nearly 200 times"


class TestNerscOlcfShape:
    """§6.4: a 33 GB file took >1 workday before; after DTNs, 200 MB/s and
    40 TB in <3 days; >=20x improvement."""

    def test_before_a_33gb_file_takes_most_of_a_day(self):
        bundle = general_purpose_campus(wan_rtt=ms(60))
        rng = np.random.default_rng(4)
        one_file = Dataset("c14-file", GB(33), 1)
        report = TransferPlan(bundle.topology, bundle.remote_dtn,
                              "lab-server1", one_file, "scp").execute(rng)
        assert report.duration.hours > 4

    def test_after_dtns_40tb_under_three_days(self):
        bundle = supercomputer_center(wan_rtt=ms(60))
        campaign = Dataset("c14-campaign", TB(40), 1200)
        report = TransferPlan(bundle.topology, bundle.remote_dtn, "dtn1",
                              campaign, tool_by_name("gridftp").with_streams(8),
                              policy=bundle.science_policy).execute()
        assert report.duration.days < 3
        assert report.mean_throughput.MBps > 150  # ~200 MB/s in the paper

    def test_improvement_at_least_20x(self):
        rng = np.random.default_rng(5)
        before = TransferPlan(general_purpose_campus(wan_rtt=ms(60)).topology,
                              "remote-dtn", "lab-server1",
                              CARBON14_INPUTS, "scp").execute(rng)
        bundle = supercomputer_center(wan_rtt=ms(60))
        after = TransferPlan(bundle.topology, "remote-dtn", "dtn1",
                             CARBON14_INPUTS,
                             tool_by_name("gridftp").with_streams(8),
                             policy=bundle.science_policy).execute()
        assert before.duration.s / after.duration.s > 20


class TestColoradoShape:
    """§6.1: fan-in loss under the flip bug; near line rate after the fix."""

    def cms_sources(self):
        return [BurstySource(name=f"cms{i}", line_rate=Gbps(1),
                             mean_rate=Mbps(600), burst_size=KB(256))
                for i in range(9)]

    def test_buggy_fabric_loses_and_fixed_does_not(self):
        buggy = campus_with_rcnet().extras["fabric"]
        fixed = campus_with_rcnet(fixed_fabric=True).extras["fabric"]
        sources = self.cms_sources()
        buggy.set_offered_load(sources)
        fixed.set_offered_load(sources)
        assert buggy.fan_in_loss() > 0.001
        assert fixed.fan_in_loss() == pytest.approx(0.0, abs=1e-9)

    def test_throughput_recovers_after_fix(self):
        sources = self.cms_sources()
        rates = {}
        for label, bundle in (("buggy", campus_with_rcnet()),
                              ("fixed", campus_with_rcnet(fixed_fabric=True))):
            bundle.extras["fabric"].set_offered_load(sources)
            profile = bundle.topology.profile_between(
                "cms1", bundle.remote_dtn, **bundle.science_policy)
            conn = TcpConnection(profile,
                                 algorithm=algorithm_by_name("htcp"),
                                 rng=np.random.default_rng(6))
            rates[label] = conn.measure(seconds(20),
                                        max_rounds=100_000).mean_throughput
        # Fixed fabric: each 1G host runs near its line rate.
        assert rates["fixed"].mbps > 800
        assert rates["buggy"].bps < 0.5 * rates["fixed"].bps


class TestMonitoringWorkflow:
    """§2 + §3.3: the failing-line-card incident end to end —
    counters silent, OWAMP sees it, alert fires, localization names it."""

    def test_full_detection_story(self):
        bundle = simple_science_dmz()
        topo = bundle.topology
        sim = Simulator(seed=11)
        archive = MeasurementArchive()
        mesh = MeshSchedule(
            topo, ["dmz-perfsonar", "remote-dtn"], sim, archive,
            config=MeshConfig(owamp_interval=minutes(1),
                              bwctl_interval=minutes(10),
                              owamp_packets=20_000),
            policy=bundle.science_policy)
        mesh.start()

        injector = FaultInjector(sim)
        border = topo.node("border")
        injector.inject_at(minutes(30), border, FailingLineCard())
        sim.run_until(minutes(60).s)

        # 1. The fault is invisible to counters.
        assert injector.invisible_faults()

        # 2. Active measurement sees it.
        alerter = ThresholdAlerter(archive,
                                   AlertRule(loss_rate_threshold=1e-5))
        alerts = [a for a in alerter.scan() if a.time >= minutes(30).s]
        assert alerts

        # 3. Localization names the culprit element.
        path = topo.path("dmz-perfsonar", "remote-dtn",
                         **bundle.science_policy)
        culprits = localize_loss(topo, path)
        assert culprits and "border" in culprits[0][0]

        # 4. Repair clears the loss.
        record = injector.history[0]
        injector.clear(record, border)
        assert localize_loss(topo, path) == []

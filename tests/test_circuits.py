"""Tests for OSCARS reservations, SDN bypass, and RoCE (§7)."""

import pytest

from repro.circuits import (
    FlowRule,
    FlowTable,
    OpenFlowController,
    OscarsService,
    ReservationRequest,
    RoceTransfer,
)
from repro.circuits.roce import ROCE_EFFICIENCY
from repro.devices.firewall import Firewall
from repro.devices.ids import IntrusionDetectionSystem
from repro.errors import (
    CapacityError,
    ConfigurationError,
    SecurityPolicyError,
)
from repro.netsim import Link, Topology
from repro.netsim.node import Router
from repro.units import GB, Gbps, TB, bytes_, hours, ms, seconds, us


def circuit_topology():
    topo = Topology("circuits")
    topo.add_host("dtn-a", nic_rate=Gbps(40))
    topo.add_host("dtn-b", nic_rate=Gbps(40))
    topo.add_node(Router(name="r1"))
    topo.add_node(Router(name="r2"))
    topo.connect("dtn-a", "r1", Link(rate=Gbps(40), delay=us(50),
                                     mtu=bytes_(9000)))
    topo.connect("r1", "r2", Link(rate=Gbps(100), delay=ms(20),
                                  mtu=bytes_(9000)))
    topo.connect("r2", "dtn-b", Link(rate=Gbps(40), delay=us(50),
                                     mtu=bytes_(9000)))
    return topo


class TestOscars:
    def test_reserve_and_release(self):
        svc = OscarsService(circuit_topology())
        req = ReservationRequest("dtn-a", "dtn-b", Gbps(10),
                                 seconds(0), hours(1))
        res = svc.reserve(req)
        assert res.circuit_id == 1
        assert len(svc.active()) == 1
        svc.release(res)
        assert svc.active() == []

    def test_admission_control_rejects_oversubscription(self):
        svc = OscarsService(circuit_topology(), reservable_fraction=0.8)
        # 40G access link x 0.8 = 32G reservable.
        svc.reserve(ReservationRequest("dtn-a", "dtn-b", Gbps(20),
                                       seconds(0), hours(1)))
        with pytest.raises(CapacityError):
            svc.reserve(ReservationRequest("dtn-a", "dtn-b", Gbps(20),
                                           seconds(0), hours(1)))

    def test_non_overlapping_windows_share_capacity(self):
        svc = OscarsService(circuit_topology())
        svc.reserve(ReservationRequest("dtn-a", "dtn-b", Gbps(30),
                                       seconds(0), hours(1)))
        # Same bandwidth later in the day is fine.
        svc.reserve(ReservationRequest("dtn-a", "dtn-b", Gbps(30),
                                       hours(2), hours(3)))
        assert len(svc.active()) == 2

    def test_available_on_path_decreases(self):
        svc = OscarsService(circuit_topology())
        req = ReservationRequest("dtn-a", "dtn-b", Gbps(10),
                                 seconds(0), hours(1))
        path = svc.topology.path("dtn-a", "dtn-b")
        before = svc.available_on_path(path, req)
        svc.reserve(req)
        after = svc.available_on_path(path, req)
        assert before.bps - after.bps == pytest.approx(Gbps(10).bps)

    def test_circuit_profile_clamped_to_reservation(self):
        svc = OscarsService(circuit_topology())
        res = svc.reserve(ReservationRequest("dtn-a", "dtn-b", Gbps(10),
                                             seconds(0), hours(1)))
        profile = svc.circuit_profile(res)
        assert profile.capacity.gbps == pytest.approx(10)
        assert profile.random_loss == 0.0

    def test_release_unknown_rejected(self):
        svc = OscarsService(circuit_topology())
        res = svc.reserve(ReservationRequest("dtn-a", "dtn-b", Gbps(1),
                                             seconds(0), hours(1)))
        svc.release(res)
        with pytest.raises(ConfigurationError):
            svc.release(res)

    def test_request_validation(self):
        with pytest.raises(ConfigurationError):
            ReservationRequest("a", "b", Gbps(0), seconds(0), hours(1))
        with pytest.raises(ConfigurationError):
            ReservationRequest("a", "b", Gbps(1), hours(1), seconds(0))


class TestRoce:
    def test_clean_circuit_near_line_rate(self):
        svc = OscarsService(circuit_topology(), reservable_fraction=1.0)
        res = svc.reserve(ReservationRequest("dtn-a", "dtn-b", Gbps(40),
                                             seconds(0), hours(1)))
        roce = RoceTransfer(svc.circuit_profile(res))
        # The Kissel et al. number: 39.5 Gbps on a 40GE host.
        assert roce.goodput().gbps == pytest.approx(39.5, rel=0.01)

    def test_cpu_ratio_is_50x(self):
        svc = OscarsService(circuit_topology(), reservable_fraction=1.0)
        res = svc.reserve(ReservationRequest("dtn-a", "dtn-b", Gbps(40),
                                             seconds(0), hours(1)))
        result = RoceTransfer(svc.circuit_profile(res)).transfer(TB(1))
        tcp_cores = RoceTransfer.tcp_cpu_cores(result.throughput)
        assert tcp_cores / result.cpu_cores_used == pytest.approx(50, rel=0.01)

    def test_loss_collapses_roce_harder_than_tcp(self):
        topo = circuit_topology()
        topo.link_between("r1", "r2").degrade(loss_probability=1e-4)
        profile = topo.profile_between("dtn-a", "dtn-b")
        roce = RoceTransfer(profile)
        # Go-back-N with a BDP window at 1e-4 loss: well below line rate
        # (the reason §7.1 requires a clean dedicated circuit).
        assert roce.goodput().gbps < 0.5 * profile.capacity.gbps
        result = roce.transfer(GB(10))
        assert result.loss_limited

    def test_transfer_duration(self):
        svc = OscarsService(circuit_topology(), reservable_fraction=1.0)
        res = svc.reserve(ReservationRequest("dtn-a", "dtn-b", Gbps(40),
                                             seconds(0), hours(1)))
        result = RoceTransfer(svc.circuit_profile(res)).transfer(TB(1))
        expected = TB(1).bits / (Gbps(40).bps * ROCE_EFFICIENCY)
        assert result.duration.s == pytest.approx(expected, rel=0.01)

    def test_validation(self):
        svc = OscarsService(circuit_topology())
        res = svc.reserve(ReservationRequest("dtn-a", "dtn-b", Gbps(1),
                                             seconds(0), hours(1)))
        with pytest.raises(ConfigurationError):
            RoceTransfer(svc.circuit_profile(res)).transfer(GB(0))


def sdn_topology():
    """Hosts with both a firewalled default path and a science bypass."""
    topo = Topology("sdn")
    topo.add_host("site-a", nic_rate=Gbps(10))
    topo.add_host("site-b", nic_rate=Gbps(10))
    topo.add_node(Router(name="edge"))
    fw = topo.add_node(Firewall(name="fw"))
    fw.policy.allow()
    topo.add_node(Router(name="inner"))
    topo.connect("site-a", "edge", Link(rate=Gbps(10), delay=ms(1),
                                        mtu=bytes_(9000)))
    topo.connect("edge", "fw", Link(rate=Gbps(10), delay=us(10)))
    topo.connect("fw", "inner", Link(rate=Gbps(10), delay=us(10)))
    # Bypass path: edge -> inner directly (higher latency so the default
    # shortest path goes through the firewall).
    topo.connect("edge", "inner", Link(rate=Gbps(10), delay=ms(5),
                                       mtu=bytes_(9000), tags={"science"}))
    topo.connect("inner", "site-b", Link(rate=Gbps(10), delay=ms(1),
                                         mtu=bytes_(9000)))
    return topo


class TestFlowTable:
    def test_priority_wins(self):
        table = FlowTable()
        table.install(FlowRule(action="forward", priority=1))
        table.install(FlowRule(src="a", dst="b", port=5000,
                               action="bypass", priority=100))
        assert table.lookup("a", "b", 5000) == "bypass"
        assert table.lookup("x", "y", 80) == "forward"

    def test_specificity_breaks_priority_ties(self):
        table = FlowTable()
        table.install(FlowRule(src="a", action="drop", priority=10))
        table.install(FlowRule(src="a", dst="b", port=22,
                               action="forward", priority=10))
        assert table.lookup("a", "b", 22) == "forward"

    def test_default_action(self):
        assert FlowTable(default_action="inspect").lookup("x", "y", 1) == "inspect"

    def test_remove_cookie(self):
        table = FlowTable()
        table.install(FlowRule(src="a", action="bypass", cookie="c1"))
        table.install(FlowRule(src="b", action="bypass", cookie="c2"))
        assert table.remove_cookie("c1") == 1
        assert len(table) == 1

    def test_rule_validation(self):
        with pytest.raises(ConfigurationError):
            FlowRule(action="teleport")


class TestOpenFlowBypass:
    def test_trusted_clean_flow_gets_bypass(self):
        topo = sdn_topology()
        ids = IntrusionDetectionSystem()
        controller = OpenFlowController(topo, ids,
                                        trusted_sites={"site-a", "site-b"})
        decision = controller.request_flow("site-a", "site-b", 50000)
        assert decision.bypass_installed
        assert not decision.path.traverses_kind("firewall")

    def test_untrusted_site_stays_inspected(self):
        topo = sdn_topology()
        controller = OpenFlowController(topo, IntrusionDetectionSystem(),
                                        trusted_sites={"site-b"})
        decision = controller.request_flow("site-a", "site-b", 50000)
        assert not decision.bypass_installed
        path = controller.path_for("site-a", "site-b", 50000)
        assert path.traverses_kind("firewall")

    def test_ids_alert_blocks_bypass(self):
        topo = sdn_topology()
        ids = IntrusionDetectionSystem()
        ids.add_signature("scan", lambda s, d, p: p == 22)
        controller = OpenFlowController(topo, ids,
                                        trusted_sites={"site-a", "site-b"})
        decision = controller.request_flow("site-a", "site-b", 22)
        assert not decision.bypass_installed
        assert decision.alerts

    def test_bypass_improves_path_profile(self):
        topo = sdn_topology()
        controller = OpenFlowController(topo, IntrusionDetectionSystem(),
                                        trusted_sites={"site-a", "site-b"})
        before = topo.profile(controller.path_for("site-a", "site-b", 50000))
        controller.request_flow("site-a", "site-b", 50000)
        after = topo.profile(controller.path_for("site-a", "site-b", 50000))
        assert after.capacity.bps > before.capacity.bps
        assert after.flow.window_scaling  # no seq-checking middlebox

    def test_revoke(self):
        topo = sdn_topology()
        controller = OpenFlowController(topo, IntrusionDetectionSystem(),
                                        trusted_sites={"site-a", "site-b"})
        controller.request_flow("site-a", "site-b", 50000)
        assert controller.revoke("site-a", "site-b", 50000) == 1
        path = controller.path_for("site-a", "site-b", 50000)
        assert path.traverses_kind("firewall")

    def test_drop_action_raises(self):
        topo = sdn_topology()
        controller = OpenFlowController(topo, IntrusionDetectionSystem())
        controller.table.install(FlowRule(src="site-a", action="drop",
                                          priority=200))
        with pytest.raises(SecurityPolicyError):
            controller.path_for("site-a", "site-b", 80)

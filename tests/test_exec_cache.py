"""ResultCache unit tests + the cross-platform key-stability guard.

The cache key function must be a pure function of its inputs on every
platform and under every ``PYTHONHASHSEED`` — i.e. built on sha256 of
a canonical encoding, never on Python's randomized ``hash()``.  A
golden key fixture pins the exact hex digest; a subprocess check
proves two interpreters with different hash seeds agree.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

SRC_DIR = str(pathlib.Path(__file__).resolve().parent.parent / "src")

from repro.exec import ResultCache, cache_key, canonical_json, derive_seed

#: Frozen inputs for the golden fixture.  Do not "refresh" these keys
#: to make a failure pass: a changed digest means every cache on disk
#: just silently invalidated, which is a compatibility break — bump
#: ``repro.exec.cache.LAYOUT_VERSION`` intentionally instead.
GOLDEN_FN = "benchmarks.fig1.measure_point"
GOLDEN_PARAMS = {"rtt_ms": 10, "loss": 4.5e-05, "algorithm": "reno"}
GOLDEN_SEED = 7
GOLDEN_VERSION = "v1"
GOLDEN_KEY = \
    "683238d4ad2b8f2caa636832f772d5f17d64128f54bcc8b5f8d7bac52da1fa08"
GOLDEN_DERIVED_SEED = 8840506737630867764


class TestKeyStability:
    def test_golden_key_fixture(self):
        assert cache_key(GOLDEN_FN, GOLDEN_PARAMS, GOLDEN_SEED,
                         GOLDEN_VERSION) == GOLDEN_KEY

    def test_golden_derived_seed(self):
        assert derive_seed(11, GOLDEN_PARAMS) == GOLDEN_DERIVED_SEED

    def test_key_ignores_param_insertion_order(self):
        reordered = dict(reversed(list(GOLDEN_PARAMS.items())))
        assert cache_key(GOLDEN_FN, reordered, GOLDEN_SEED,
                         GOLDEN_VERSION) == GOLDEN_KEY

    def test_key_is_pythonhashseed_independent(self):
        """Two interpreters with different hash seeds agree on keys."""
        program = (
            "from repro.exec import cache_key, derive_seed;"
            f"print(cache_key({GOLDEN_FN!r}, {GOLDEN_PARAMS!r}, "
            f"{GOLDEN_SEED}, {GOLDEN_VERSION!r}));"
            f"print(derive_seed(11, {GOLDEN_PARAMS!r}))"
        )
        outputs = []
        for hashseed in ("0", "1", "4242"):
            env = dict(os.environ,
                       PYTHONHASHSEED=hashseed,
                       PYTHONPATH=SRC_DIR + os.pathsep +
                       os.environ.get("PYTHONPATH", ""))
            proc = subprocess.run([sys.executable, "-c", program],
                                  capture_output=True, text=True,
                                  env=env, check=True)
            outputs.append(proc.stdout.strip().splitlines())
        assert outputs[0] == outputs[1] == outputs[2] == \
            [GOLDEN_KEY, str(GOLDEN_DERIVED_SEED)]

    def test_each_component_changes_the_key(self):
        base = cache_key(GOLDEN_FN, GOLDEN_PARAMS, GOLDEN_SEED,
                         GOLDEN_VERSION)
        assert cache_key("other.fn", GOLDEN_PARAMS, GOLDEN_SEED,
                         GOLDEN_VERSION) != base
        assert cache_key(GOLDEN_FN, {**GOLDEN_PARAMS, "rtt_ms": 11},
                         GOLDEN_SEED, GOLDEN_VERSION) != base
        assert cache_key(GOLDEN_FN, GOLDEN_PARAMS, 8,
                         GOLDEN_VERSION) != base
        assert cache_key(GOLDEN_FN, GOLDEN_PARAMS, GOLDEN_SEED,
                         "v2") != base

    def test_canonical_json_never_uses_hash_ordering(self):
        # Sets would iterate in hash order; the encoder must not accept
        # anything whose encoding could depend on hash().
        encoded = canonical_json({"b": 2, "a": 1, "c": [1, "x"]})
        assert encoded == '{"a":1,"b":2,"c":[1,"x"]}'


class TestResultCacheStore:
    def test_roundtrip_value_and_counters(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key("fn", {"x": 1}, None, "v")
        assert cache.load(key) is None
        assert cache.misses == 1
        assert cache.store(key, fn_id="fn", params={"x": 1}, seed=None,
                           version="v", value=[1.5, "two", None, True])
        entry = cache.load(key)
        assert entry["ok"] is True
        assert entry["value"] == [1.5, "two", None, True]
        assert cache.hits == 1 and cache.stores == 1
        assert len(cache) == 1

    def test_uncacheable_values_are_skipped_not_mangled(self, tmp_path):
        cache = ResultCache(tmp_path)
        for bad in ((1, 2), {1: "int key"}, object(), float("nan"),
                    {"x": (1, 2)}):
            key = cache.key("fn", {"v": repr(bad)}, None, "v")
            assert not cache.store(key, fn_id="fn", params={}, seed=None,
                                   version="v", value=bad)
        assert cache.uncacheable == 5
        assert len(cache) == 0

    def test_error_outcomes_are_cacheable(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key("fn", {"x": 2}, None, "v")
        assert cache.store(key, fn_id="fn", params={"x": 2}, seed=None,
                           version="v", value=None, error="x=2 bad")
        entry = cache.load(key)
        assert entry["ok"] is False and entry["error"] == "x=2 bad"

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key("fn", {"x": 1}, None, "v")
        cache.store(key, fn_id="fn", params={"x": 1}, seed=None,
                    version="v", value=42)
        path = tmp_path / key[:2] / f"{key}.json"
        path.write_text("{ not json")
        assert cache.load(key) is None
        assert cache.stats()["corrupt"] == 1

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        for x in range(5):
            key = cache.key("fn", {"x": x}, None, "v")
            cache.store(key, fn_id="fn", params={"x": x}, seed=None,
                        version="v", value=x)
        assert cache.clear() == 5
        assert len(cache) == 0

    def test_entry_file_is_human_auditable(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key("fn", {"x": 1}, 99, "v")
        cache.store(key, fn_id="fn", params={"x": 1}, seed=99,
                    version="v", value=3.5)
        path = tmp_path / key[:2] / f"{key}.json"
        entry = json.loads(path.read_text())
        assert entry["fn"] == "fn" and entry["seed"] == 99
        assert entry["params"] == {"x": 1} and entry["key"] == key

    def test_shared_registry_integration(self, tmp_path):
        from repro.telemetry import MetricsRegistry
        registry = MetricsRegistry()
        cache = ResultCache(tmp_path, metrics=registry)
        cache.load(cache.key("fn", {}, None, ""))
        assert registry.get("misses", component="exec.cache").value == 1
        assert "exec.cache" in registry.render_text()

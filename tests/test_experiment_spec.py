"""Spec-layer contract: lossless JSON round-trip, stable digests,
helpful parse errors.

The whole experiment layer rests on one invariant —
``ExperimentSpec.from_json(spec.to_json()) == spec`` — so it is tested
property-style over generated specs of every kind.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.experiment import (
    SPEC_SCHEMA_VERSION,
    AlertRuleSpec,
    BenchSpec,
    ExperimentSpec,
    FaultSpec,
    LinkCutSpec,
    MeshSpec,
    ScenarioSpec,
    SweepSpec,
    load_spec,
)

# -- strategies ---------------------------------------------------------------

names = st.text(alphabet="abcdefghij-_0123456789", min_size=1, max_size=20)
seeds = st.integers(min_value=0, max_value=2**31 - 1)
seconds_values = st.floats(min_value=1.0, max_value=100_000.0,
                           allow_nan=False, allow_infinity=False)


@st.composite
def mesh_specs(draw):
    return MeshSpec(
        hosts=tuple(draw(st.lists(names, max_size=3))),
        owamp_interval_s=draw(seconds_values),
        bwctl_interval_s=draw(seconds_values),
        bwctl_duration_s=draw(seconds_values),
        owamp_packets=draw(st.integers(min_value=1, max_value=100_000)),
        algorithm=draw(st.sampled_from(["reno", "htcp", "cubic"])),
    )


@st.composite
def fault_specs(draw, horizon):
    return FaultSpec(
        kind=draw(st.sampled_from(["linecard", "optics", "cpu", "duplex"])),
        at_s=draw(st.floats(min_value=0.0, max_value=horizon - 1.0,
                            allow_nan=False)),
        node=draw(st.one_of(st.none(), names)),
        params=tuple(sorted(draw(st.dictionaries(
            st.sampled_from(["loss_rate", "cpu_mbps"]),
            st.floats(min_value=0.001, max_value=1000.0, allow_nan=False),
            max_size=2)).items())),
    )


@st.composite
def scenario_specs(draw):
    until = draw(st.floats(min_value=60.0, max_value=100_000.0,
                           allow_nan=False))
    return ScenarioSpec(
        name=draw(names),
        seed=draw(seeds),
        description=draw(st.text(max_size=30)),
        design=draw(st.sampled_from(
            ["simple-science-dmz", "big-data-site", "colorado-campus"])),
        until_s=until,
        mesh=draw(mesh_specs()),
        faults=tuple(draw(st.lists(fault_specs(until), max_size=3))),
        repairs_s=tuple(draw(st.lists(seconds_values, max_size=2))),
        link_cuts=tuple(
            LinkCutSpec(a=draw(names), b=draw(names), at_s=draw(seconds_values))
            for _ in range(draw(st.integers(min_value=0, max_value=2)))),
        alert_rule=AlertRuleSpec(
            loss_rate_threshold=draw(st.floats(min_value=1e-9, max_value=0.5,
                                               allow_nan=False))),
    )


grid_values = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.floats(min_value=-100.0, max_value=100.0, allow_nan=False,
              allow_infinity=False),
    st.booleans(),
    st.text(alphabet="abcxyz", max_size=5),
)


@st.composite
def sweep_specs(draw):
    params = draw(st.lists(names, min_size=1, max_size=3, unique=True))
    grid = tuple(
        (p, tuple(draw(st.lists(grid_values, min_size=1, max_size=3))))
        for p in params)
    return SweepSpec(
        name=draw(names),
        seed=draw(seeds),
        description=draw(st.text(max_size=30)),
        target=draw(names),
        grid=grid,
        value_label=draw(st.sampled_from(["value", "bps", "gbps"])),
        on_error=draw(st.sampled_from(["raise", "record"])),
        seeded=draw(st.booleans()),
    )


@st.composite
def bench_specs(draw):
    return BenchSpec(
        name=draw(names),
        seed=draw(seeds),
        description=draw(st.text(max_size=30)),
        scenarios=tuple(draw(st.lists(names, max_size=3))),
        repeats=draw(st.integers(min_value=1, max_value=10)),
        quick=draw(st.booleans()),
    )


any_spec = st.one_of(scenario_specs(), sweep_specs(), bench_specs())


# -- the core invariant -------------------------------------------------------

class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(spec=any_spec)
    def test_json_round_trip_is_identity(self, spec):
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    @settings(max_examples=30, deadline=None)
    @given(spec=any_spec)
    def test_digest_stable_across_round_trip(self, spec):
        again = ExperimentSpec.from_json(spec.to_json())
        assert again.digest() == spec.digest()
        assert again.to_json() == spec.to_json()

    @settings(max_examples=30, deadline=None)
    @given(spec=sweep_specs())
    def test_sweep_grid_order_survives(self, spec):
        """canonical_json sorts object keys; grid order must not care."""
        again = ExperimentSpec.from_json(spec.to_json())
        assert [p for p, _ in again.grid] == [p for p, _ in spec.grid]

    def test_save_and_load_file(self, tmp_path):
        spec = ScenarioSpec(name="file-trip", seed=9,
                            faults=(FaultSpec(kind="linecard", at_s=60.0),))
        path = spec.save(tmp_path / "s.json")
        assert load_spec(path) == spec
        # The file form is human-diffable (indented, sorted, newline).
        text = (tmp_path / "s.json").read_text()
        assert text.startswith("{\n") and text.endswith("\n")
        assert json.loads(text)["schema"] == SPEC_SCHEMA_VERSION


class TestSweepSpecHelpers:
    def test_from_grid_preserves_order(self):
        spec = SweepSpec.from_grid({"b": [1], "a": [2, 3]},
                                   name="g", target="t")
        assert [p for p, _ in spec.grid] == ["b", "a"]
        assert spec.grid_mapping() == {"b": [1], "a": [2, 3]}
        assert spec.points() == 2

    def test_reordered_grid_changes_digest(self):
        one = SweepSpec.from_grid({"a": [1], "b": [2]}, name="g", target="t")
        two = SweepSpec.from_grid({"b": [2], "a": [1]}, name="g", target="t")
        assert one.digest() != two.digest()


class TestValidation:
    def test_unknown_kind_rejected(self):
        data = {"schema": SPEC_SCHEMA_VERSION, "kind": "mystery", "name": "x"}
        with pytest.raises(ConfigurationError, match="unknown spec kind"):
            ExperimentSpec.from_dict(data)

    def test_wrong_schema_rejected(self):
        data = {"schema": 999, "kind": "scenario", "name": "x"}
        with pytest.raises(ConfigurationError, match="schema"):
            ExperimentSpec.from_dict(data)

    def test_bad_json_rejected(self):
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            ExperimentSpec.from_json("{nope")

    def test_missing_file_rejected(self):
        with pytest.raises(ConfigurationError, match="cannot read"):
            ExperimentSpec.from_file("/nonexistent/spec.json")

    def test_fault_after_horizon_rejected(self):
        with pytest.raises(ConfigurationError, match="not before"):
            ScenarioSpec(name="x", until_s=100.0,
                         faults=(FaultSpec(kind="linecard", at_s=200.0),))

    def test_empty_sweep_grid_rejected(self):
        with pytest.raises(ConfigurationError, match="grid"):
            SweepSpec(name="x", target="t", grid=())

    def test_duplicate_grid_param_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            SweepSpec(name="x", target="t",
                      grid=(("a", (1,)), ("a", (2,))))

    def test_bad_on_error_rejected(self):
        with pytest.raises(ConfigurationError, match="on_error"):
            SweepSpec(name="x", target="t", grid=(("a", (1,)),),
                      on_error="explode")

    def test_object_form_grid_accepted(self):
        """Hand-written files may use {param: values} for the grid."""
        data = {"schema": SPEC_SCHEMA_VERSION, "kind": "sweep",
                "name": "hand", "target": "mathis",
                "grid": {"rtt_ms": [1, 10]}}
        spec = ExperimentSpec.from_dict(data)
        assert spec.grid == (("rtt_ms", (1, 10)),)

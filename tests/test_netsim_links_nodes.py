"""Tests for links, nodes, and the PathElement protocol."""

import pytest

from repro.errors import ConfigurationError
from repro.netsim.link import ETHERNET_MTU, JUMBO_MTU, Link
from repro.netsim.node import (
    DEFAULT_UNSCALED_WINDOW,
    FlowContext,
    Host,
    Node,
    Router,
    Switch,
)
from repro.units import Gbps, KB, MB, Mbps, bytes_, ms, seconds, us


class TestLink:
    def test_basic_properties(self):
        link = Link(rate=Gbps(10), delay=ms(5))
        assert link.element_capacity().gbps == 10
        assert link.element_latency().ms == 5
        assert link.element_loss_probability() == 0.0

    def test_explicit_loss(self):
        link = Link(rate=Gbps(10), delay=ms(5), loss_probability=0.01)
        assert link.element_loss_probability() == pytest.approx(0.01)

    def test_ber_converts_to_packet_loss(self):
        link = Link(rate=Gbps(10), delay=ms(5), mtu=bytes_(9000),
                    bit_error_rate=1e-9)
        p = link.element_loss_probability()
        # 72000 bits/packet at 1e-9 BER -> ~7.2e-5 per packet.
        assert p == pytest.approx(7.2e-5, rel=0.01)

    def test_combined_loss_sources(self):
        link = Link(rate=Gbps(10), delay=ms(5), loss_probability=0.5,
                    bit_error_rate=0.0)
        link.degrade(bit_error_rate=1e-6)
        assert link.element_loss_probability() > 0.5

    def test_degrade_and_repair(self):
        link = Link(rate=Gbps(10), delay=ms(5))
        link.degrade(loss_probability=1 / 22000)
        assert link.element_loss_probability() > 0
        link.repair()
        assert link.element_loss_probability() == 0.0

    def test_degrade_validates(self):
        link = Link(rate=Gbps(10), delay=ms(5))
        with pytest.raises(ConfigurationError):
            link.degrade(loss_probability=2.0)

    def test_serialization_delay(self):
        link = Link(rate=Mbps(8), delay=ms(0))
        assert link.serialization_delay(bytes_(1000)).ms == pytest.approx(1.0)

    def test_invalid_configs(self):
        with pytest.raises(ConfigurationError):
            Link(rate=Gbps(0), delay=ms(1))
        with pytest.raises(ConfigurationError):
            Link(rate=Gbps(1), delay=ms(1), loss_probability=1.5)
        with pytest.raises(ConfigurationError):
            Link(rate=Gbps(1), delay=ms(1), mtu=bytes_(10))

    def test_mtu_constants(self):
        assert ETHERNET_MTU.bytes == 1500
        assert JUMBO_MTU.bytes == 9000

    def test_tags(self):
        link = Link(rate=Gbps(1), delay=ms(1), tags={"science"})
        assert link.has_tag("science")
        assert not link.has_tag("enterprise")


class TestFlowContext:
    def test_effective_window_with_scaling(self):
        ctx = FlowContext(mss=bytes_(1460), max_receive_window=MB(16))
        assert ctx.effective_receive_window().bits == MB(16).bits

    def test_effective_window_clamped_without_scaling(self):
        ctx = FlowContext(mss=bytes_(1460), max_receive_window=MB(16),
                          window_scaling=False)
        assert ctx.effective_receive_window().bits == DEFAULT_UNSCALED_WINDOW.bits

    def test_small_window_not_raised_by_clamp(self):
        ctx = FlowContext(mss=bytes_(1460), max_receive_window=KB(32),
                          window_scaling=False)
        assert ctx.effective_receive_window().bits == KB(32).bits

    def test_with_returns_modified_copy(self):
        ctx = FlowContext(mss=bytes_(1460))
        ctx2 = ctx.with_(window_scaling=False)
        assert ctx.window_scaling and not ctx2.window_scaling


class TestNode:
    def test_requires_name(self):
        with pytest.raises(ConfigurationError):
            Node(name="")

    def test_neutral_element_defaults(self):
        node = Node(name="n")
        assert node.element_capacity() is None
        assert node.element_loss_probability() == 0.0
        assert node.element_latency().s == 0.0
        ctx = FlowContext(mss=bytes_(1460))
        assert node.transform_flow(ctx) is ctx

    def test_attach_detach(self):
        node = Node(name="n")

        class Extra:
            def element_latency(self):
                return seconds(0)

            def element_capacity(self):
                return None

            def element_loss_probability(self):
                return 0.25

            def transform_flow(self, ctx):
                return ctx

        extra = Extra()
        node.attach(extra)
        elements = list(node.transit_elements())
        assert elements == [node, extra]
        node.detach(extra)
        assert list(node.transit_elements()) == [node]

    def test_detach_missing_raises(self):
        node = Node(name="n")
        with pytest.raises(ConfigurationError):
            node.detach(object())

    def test_attach_requires_protocol(self):
        node = Node(name="n")
        with pytest.raises(ConfigurationError):
            node.attach(object())

    def test_host_nic_capacity(self):
        host = Host(name="h", nic_rate=Gbps(10))
        assert host.element_capacity().gbps == 10
        assert Host(name="h2").element_capacity() is None

    def test_router_and_switch_latency(self):
        assert Router(name="r").element_latency().us == pytest.approx(50)
        assert Switch(name="s").element_latency().us == pytest.approx(10)

    def test_equality_by_name_and_kind(self):
        assert Host(name="x") == Host(name="x")
        assert Host(name="x") != Router(name="x")
        assert hash(Host(name="x")) == hash(Host(name="x"))

    def test_tags(self):
        node = Node(name="n", tags={"science-dmz"})
        assert node.has_tag("science-dmz")
        assert isinstance(node.tags, frozenset)

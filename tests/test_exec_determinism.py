"""Determinism harness for repro.exec: parallel == serial, byte-for-byte.

The contract the exec subsystem ships with (ISSUE 2): a sweep run
through the process pool, or replayed from the result cache, returns a
``SweepResult`` *identical* to the serial run — same records, same
order, same rendered table text.  These tests pin that down on the
paper's own workload (the Figure 1 loss×RTT grid) plus the tricky
corners: scheduling skew, error propagation, cache invalidation, and
the pickling constraint on swept functions.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis.sweep import sweep
from repro.errors import ConfigurationError, ExecError
from repro.exec import (
    ParallelRunner,
    ResultCache,
    code_version_tag,
    derive_seed,
)
from repro.tcp.mathis import mathis_throughput
from repro.units import bytes_, seconds

#: The Figure 1 working points: RTT sweep at the §2 loss rate and two
#: heavier-loss rows.
FIG1_GRID = {
    "rtt_ms": [1, 2, 5, 10, 20, 40, 60, 80, 100],
    "loss": [1.0 / 22_000.0, 1e-4, 1e-3],
}


def mathis_point(rtt_ms, loss):
    """Mathis ceiling (bps) at one Figure-1 grid point."""
    return mathis_throughput(bytes_(9000), seconds(rtt_ms / 1e3), loss).bps


def slow_inverted(delay_ms):
    """Sleeps *longer* for earlier grid points, to invert completion."""
    time.sleep(delay_ms / 1e3)
    return delay_ms * 10


def flaky(x, y):
    if x == 2:
        raise ValueError(f"x={x} is right out")
    return x * 100 + y


def distinct_failures(x):
    if x >= 3:
        raise ValueError(f"boom at x={x}")
    return x


def seeded_value(x, seed):
    return f"{x}/{seed}"


class TestParallelMatchesSerial:
    def test_fig1_grid_records_order_and_table(self):
        serial = sweep(mathis_point, FIG1_GRID, value_label="bps")
        parallel = sweep(mathis_point, FIG1_GRID, value_label="bps",
                         workers=4)
        assert parallel.records == serial.records
        assert [r.params for r in parallel.records] == \
            [r.params for r in serial.records]
        assert (parallel.table("fig1").render_text()
                == serial.table("fig1").render_text())

    def test_workers_one_and_zero_are_serial(self):
        serial = sweep(mathis_point, FIG1_GRID)
        for workers in (None, 0, 1):
            assert sweep(mathis_point, FIG1_GRID,
                         workers=workers).records == serial.records

    def test_order_restored_under_scheduling_skew(self):
        # Earlier points sleep longest, so completion order is roughly
        # the reverse of submission order; output order must not care.
        grid = {"delay_ms": [120, 80, 40, 0]}
        result = sweep(slow_inverted, grid, workers=4)
        assert [r.params["delay_ms"] for r in result.records] == \
            [120, 80, 40, 0]
        assert [r.value for r in result.records] == [1200, 800, 400, 0]


class TestCachedRuns:
    def test_cache_accepts_a_directory_path(self, tmp_path):
        # cache= takes a ResultCache or a plain path (str/PathLike).
        cold = sweep(mathis_point, FIG1_GRID, cache=str(tmp_path / "c"))
        warm = sweep(mathis_point, FIG1_GRID, cache=tmp_path / "c")
        assert warm.records == cold.records
        assert warm.stats["evaluated"] == 0
        assert warm.stats["cache_hits"] == len(cold.records)

    def test_second_run_is_all_hits_with_zero_evaluations(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        n_points = 9 * 3
        first = sweep(mathis_point, FIG1_GRID, workers=4, cache=cache)
        assert first.stats["evaluated"] == n_points
        assert first.stats["cache_misses"] == n_points
        assert first.stats["cache_hits"] == 0

        second = sweep(mathis_point, FIG1_GRID, workers=4, cache=cache)
        assert second.stats["evaluated"] == 0, \
            "cached rerun must not evaluate the swept function"
        assert second.stats["cache_hits"] == n_points
        assert second.records == first.records
        assert (second.table("fig1").render_text()
                == first.table("fig1").render_text())

        # The counters are real telemetry instruments, exported like
        # any other component's metrics.
        hits = cache.metrics.get("hits", component="exec.cache")
        assert hits is not None and hits.value == n_points
        assert "exec.cache" in cache.metrics.render_text()

    def test_cached_serial_equals_uncached_parallel(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        baseline = sweep(mathis_point, FIG1_GRID, workers=4)
        sweep(mathis_point, FIG1_GRID, cache=cache)          # populate
        replay = sweep(mathis_point, FIG1_GRID, cache=cache)  # replay
        assert replay.stats["evaluated"] == 0
        assert replay.records == baseline.records
        assert (replay.table("t").render_text()
                == baseline.table("t").render_text())

    def test_code_version_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        grid = {"x": [1, 2], "y": [3, 4]}

        def point(x, y):
            return float(x + y)

        sweep(point, grid, cache=cache, code_version="v1")
        again = sweep(point, grid, cache=cache, code_version="v1")
        assert again.stats["cache_hits"] == 4

        bumped = sweep(point, grid, cache=cache, code_version="v2")
        assert bumped.stats["cache_hits"] == 0
        assert bumped.stats["evaluated"] == 4

    def test_default_version_tag_tracks_source(self):
        def one(x):
            return x + 1

        def two(x):
            return x + 2

        assert code_version_tag(one) == code_version_tag(one)
        assert code_version_tag(one) != code_version_tag(two)


class TestErrorPropagation:
    def test_record_mode_parallel_matches_serial(self):
        grid = {"x": [1, 2, 3], "y": [0, 1]}
        serial = sweep(flaky, grid, on_error="record")
        parallel = sweep(flaky, grid, on_error="record", workers=3)
        assert parallel.records == serial.records
        assert (parallel.table("flaky").render_text()
                == serial.table("flaky").render_text())
        assert len(parallel.failures()) == 2
        assert all("right out" in r.error for r in parallel.failures())

    def test_raise_mode_raises_earliest_grid_failure(self):
        grid = {"x": [1, 2, 3, 4, 5]}
        with pytest.raises(ValueError) as serial_exc:
            sweep(distinct_failures, grid)
        with pytest.raises(ValueError) as parallel_exc:
            sweep(distinct_failures, grid, workers=4)
        # Not just any failure: the one the serial loop would hit first.
        assert str(parallel_exc.value) == str(serial_exc.value) == \
            "boom at x=3"

    def test_record_mode_errors_are_cacheable(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        grid = {"x": [1, 2, 3], "y": [0, 1]}
        first = sweep(flaky, grid, on_error="record", cache=cache)
        replay = sweep(flaky, grid, on_error="record", cache=cache)
        assert replay.stats["evaluated"] == 0
        assert replay.records == first.records

    def test_cached_failure_replayed_in_raise_mode_is_exec_error(
            self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        grid = {"x": [1, 2, 3], "y": [0, 1]}
        sweep(flaky, grid, on_error="record", cache=cache)
        with pytest.raises(ExecError, match="right out"):
            sweep(flaky, grid, cache=cache)


class TestPicklingConstraint:
    def test_lambda_with_workers_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError, match="picklable"):
            sweep(lambda x: x, {"x": [1, 2, 3]}, workers=2)

    def test_closure_with_workers_is_a_configuration_error(self):
        offset = 5

        def local_fn(x):
            return x + offset

        with pytest.raises(ConfigurationError, match="top level"):
            sweep(local_fn, {"x": [1, 2, 3]}, workers=2)

    def test_lambda_still_fine_serially(self):
        result = sweep(lambda x: x * 2, {"x": [1, 2, 3]})
        assert result.values() == [2, 4, 6]


class TestSeedDerivation:
    def test_seed_threading_parallel_matches_serial(self):
        grid = {"x": [1, 2, 3, 4]}
        serial = sweep(seeded_value, grid, base_seed=42)
        parallel = sweep(seeded_value, grid, base_seed=42, workers=4)
        assert parallel.records == serial.records

    def test_derived_seed_is_pure_function_of_point(self):
        grid = {"x": [7]}
        result = sweep(seeded_value, grid, base_seed=99)
        expected = derive_seed(99, {"x": 7})
        assert result.records[0].value == f"7/{expected}"

    def test_seed_dimension_collision_rejected(self):
        with pytest.raises(ConfigurationError, match="collide"):
            sweep(seeded_value, {"x": [1], "seed": [1, 2]}, base_seed=0)

    def test_runner_exposes_point_outcomes_in_order(self):
        runner = ParallelRunner(2, base_seed=7)
        outcomes = runner.map(seeded_value,
                              [{"x": 1}, {"x": 2}, {"x": 3}])
        assert [o.index for o in outcomes] == [0, 1, 2]
        assert all(o.seed == derive_seed(7, o.params) for o in outcomes)
        assert runner.stats()["evaluated"] == 3

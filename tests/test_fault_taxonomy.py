"""The soft-failure taxonomy: which signal catches which fault (§3.3).

The paper's operational wisdom, as a table of assertions: each fault
class has a characteristic signature, and the monitoring pattern works
because *active* measurement covers the classes that passive counters
miss.

| fault                    | counters | owamp loss | owamp latency | bwctl |
|--------------------------|----------|------------|---------------|-------|
| failing line card        |   no     |   YES      |      no       |  YES  |
| dirty optics             |   yes    |   YES      |      no       |  YES  |
| management-CPU slow path |   no     |   no       |     YES       |  YES  |
| duplex mismatch          |   yes    |   YES      |      no       |  YES  |
"""

import numpy as np
import pytest

from repro.devices.faults import (
    DirtyOptics,
    DuplexMismatch,
    FailingLineCard,
    ManagementCpuForwarding,
)
from repro.netsim import Link, Topology
from repro.netsim.node import Router
from repro.perfsonar import OwampProbe, read_error_counters
from repro.perfsonar.bwctl import BwctlTest
from repro.units import Gbps, bytes_, ms, seconds


@pytest.fixture
def instrumented_path():
    topo = Topology("taxonomy")
    topo.add_host("a", nic_rate=Gbps(10))
    topo.add_host("b", nic_rate=Gbps(10))
    core = topo.add_node(Router(name="core"))
    topo.connect("a", "core", Link(rate=Gbps(10), delay=ms(5),
                                   mtu=bytes_(9000)))
    topo.connect("core", "b", Link(rate=Gbps(10), delay=ms(5),
                                   mtu=bytes_(9000)))
    return topo, core


def signatures(topo, core, fault, rng):
    """Measure all four signals with the fault attached."""
    baseline_owd = topo.profile_between("a", "b").one_way_latency.s
    baseline_bw = BwctlTest(topo, "a", "b", duration=seconds(10)).run(
        np.random.default_rng(1)).throughput.bps
    core.attach(fault)
    try:
        counters = not read_error_counters(core).looks_clean
        owamp = OwampProbe(topo, "a", "b", packets_per_session=200_000).run(rng)
        loss_seen = owamp.loss_rate > 1e-5
        latency_seen = owamp.one_way_latency.s > baseline_owd * 1.2
        bw = BwctlTest(topo, "a", "b", duration=seconds(10)).run(
            np.random.default_rng(1)).throughput.bps
        bwctl_seen = bw < 0.7 * baseline_bw
    finally:
        core.detach(fault)
    return counters, loss_seen, latency_seen, bwctl_seen


EXPECTED = {
    # fault factory: (counters, owamp-loss, owamp-latency, bwctl-drop)
    FailingLineCard: (False, True, False, True),
    DirtyOptics: (True, True, False, True),
    ManagementCpuForwarding: (False, False, True, True),
    DuplexMismatch: (True, True, False, True),
}


@pytest.mark.parametrize("fault_cls", list(EXPECTED),
                         ids=lambda c: c.__name__)
def test_fault_signature(instrumented_path, rng, fault_cls):
    topo, core = instrumented_path
    if fault_cls is DirtyOptics:
        fault = DirtyOptics(bit_error_rate=1e-8)  # strong enough to matter
    else:
        fault = fault_cls()
    observed = signatures(topo, core, fault, rng)
    assert observed == EXPECTED[fault_cls], (
        f"{fault_cls.__name__}: observed "
        f"(counters, loss, latency, bwctl) = {observed}, "
        f"expected {EXPECTED[fault_cls]}"
    )


def test_active_measurement_covers_what_counters_miss(instrumented_path, rng):
    """The monitoring pattern's justification in one assertion: every
    fault invisible to counters is caught by at least one active signal."""
    topo, core = instrumented_path
    for fault_cls in EXPECTED:
        fault = (DirtyOptics(bit_error_rate=1e-8)
                 if fault_cls is DirtyOptics else fault_cls())
        counters, loss, latency, bwctl = signatures(topo, core, fault, rng)
        if not counters:
            assert loss or latency or bwctl, (
                f"{fault_cls.__name__} invisible to counters AND to "
                "active measurement — the pattern would fail"
            )

"""Tests for the multi-flow fluid simulation and max-min fairness."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.netsim import FlowSpec, Link, Topology
from repro.tcp.simulate import MultiFlowSimulation, max_min_fair_allocation
from repro.units import GB, Gbps, MB, Mbps, bytes_, ms, seconds


class TestMaxMinFairness:
    def test_single_flow_gets_demand(self):
        alloc = max_min_fair_allocation(
            np.array([5e9]), np.array([[True]]), np.array([10e9]))
        assert alloc[0] == pytest.approx(5e9)

    def test_single_flow_capped_by_link(self):
        alloc = max_min_fair_allocation(
            np.array([20e9]), np.array([[True]]), np.array([10e9]))
        assert alloc[0] == pytest.approx(10e9)

    def test_equal_split_between_greedy_flows(self):
        alloc = max_min_fair_allocation(
            np.array([10e9, 10e9]),
            np.array([[True], [True]]),
            np.array([10e9]))
        assert alloc[0] == pytest.approx(5e9)
        assert alloc[1] == pytest.approx(5e9)

    def test_small_flow_satisfied_leftover_to_big(self):
        alloc = max_min_fair_allocation(
            np.array([1e9, 20e9]),
            np.array([[True], [True]]),
            np.array([10e9]))
        assert alloc[0] == pytest.approx(1e9)
        assert alloc[1] == pytest.approx(9e9)

    def test_disjoint_links_independent(self):
        alloc = max_min_fair_allocation(
            np.array([8e9, 8e9]),
            np.array([[True, False], [False, True]]),
            np.array([10e9, 10e9]))
        assert np.allclose(alloc, [8e9, 8e9])

    def test_multi_link_flow_takes_tightest(self):
        # Flow 0 crosses both links; flow 1 only the second.
        alloc = max_min_fair_allocation(
            np.array([10e9, 10e9]),
            np.array([[True, True], [False, True]]),
            np.array([2e9, 10e9]))
        assert alloc[0] == pytest.approx(2e9)
        assert alloc[1] == pytest.approx(8e9)

    def test_links_never_oversubscribed(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            f, l = rng.integers(1, 6), rng.integers(1, 4)
            demands = rng.uniform(1e8, 2e10, size=f)
            usage = rng.random((f, l)) < 0.6
            usage[:, 0] = True  # everyone crosses link 0
            caps = rng.uniform(1e9, 4e10, size=l)
            alloc = max_min_fair_allocation(demands, usage, caps)
            assert np.all(alloc <= demands + 1e-6)
            per_link = (alloc[:, None] * usage).sum(axis=0)
            assert np.all(per_link <= caps * (1 + 1e-9) + 1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            max_min_fair_allocation(np.array([1.0]),
                                    np.array([[True, False]]),
                                    np.array([1.0]))


class TestMultiFlow:
    def test_single_flow_completes(self, clean_path_topology):
        spec = FlowSpec(src="a", dst="b", size=GB(1), label="solo")
        sim = MultiFlowSimulation(clean_path_topology, [spec])
        progress = sim.run()
        assert progress["solo"].done
        assert progress["solo"].delivered.bits >= GB(1).bits * 0.999

    def test_two_flows_share_bottleneck(self, star_topology):
        specs = [
            FlowSpec(src="h1", dst="h3", size=GB(1), label="x"),
            FlowSpec(src="h2", dst="h3", size=GB(1), label="y"),
        ]
        sim = MultiFlowSimulation(star_topology, specs)
        progress = sim.run()
        # Both complete; the shared h3 access link halves each one's rate
        # relative to running alone, so neither finishes at full 10G pace.
        assert progress["x"].done and progress["y"].done
        solo = MultiFlowSimulation(
            star_topology, [FlowSpec(src="h1", dst="h3", size=GB(1),
                                     label="solo")]).run()["solo"]
        assert progress["x"].finish_time.s > solo.finish_time.s * 1.4

    def test_parallel_streams_fill_faster_than_one_under_loss(self):
        topo = Topology("lossy")
        topo.add_host("a", nic_rate=Gbps(10))
        topo.add_host("b", nic_rate=Gbps(10))
        topo.connect("a", "b", Link(rate=Gbps(10), delay=ms(20),
                                    mtu=bytes_(9000),
                                    loss_probability=1e-4))
        rng = np.random.default_rng(11)
        single = MultiFlowSimulation(
            topo, [FlowSpec(src="a", dst="b", size=GB(1), label="s1")],
            rng=rng).run()["s1"]
        rng = np.random.default_rng(11)
        multi = MultiFlowSimulation(
            topo, [FlowSpec(src="a", dst="b", size=GB(1),
                            parallel_streams=8, label="s8")],
            rng=rng).run()["s8"]
        assert multi.finish_time.s < single.finish_time.s

    def test_unbounded_needs_horizon(self, clean_path_topology):
        spec = FlowSpec(src="a", dst="b", size=None, label="bg")
        sim = MultiFlowSimulation(clean_path_topology, [spec])
        with pytest.raises(ConfigurationError):
            sim.run()

    def test_unbounded_flow_with_horizon(self, clean_path_topology):
        spec = FlowSpec(src="a", dst="b", size=None, label="bg",
                        rate_limit=Mbps(100))
        sim = MultiFlowSimulation(clean_path_topology, [spec])
        progress = sim.run(until=seconds(20))
        delivered = progress["bg"].delivered
        expected = Mbps(100).bps * 20
        assert delivered.bits == pytest.approx(expected, rel=0.25)

    def test_start_offsets_respected(self, clean_path_topology):
        specs = [
            FlowSpec(src="a", dst="b", size=MB(100), label="early"),
            FlowSpec(src="a", dst="b", size=MB(100), label="late",
                     start=seconds(5)),
        ]
        progress = MultiFlowSimulation(clean_path_topology, specs).run()
        assert progress["early"].finish_time.s < progress["late"].finish_time.s
        assert progress["late"].finish_time.s > 5.0

    def test_duplicate_labels_rejected(self, clean_path_topology):
        specs = [FlowSpec(src="a", dst="b", size=GB(1), label="dup"),
                 FlowSpec(src="b", dst="a", size=GB(1), label="dup")]
        with pytest.raises(ConfigurationError):
            MultiFlowSimulation(clean_path_topology, specs)

    def test_lossy_path_requires_rng(self):
        topo = Topology("lossy2")
        topo.add_host("a", nic_rate=Gbps(1))
        topo.add_host("b", nic_rate=Gbps(1))
        topo.connect("a", "b", Link(rate=Gbps(1), delay=ms(5),
                                    loss_probability=0.01))
        with pytest.raises(ConfigurationError):
            MultiFlowSimulation(topo, [FlowSpec(src="a", dst="b",
                                                size=MB(10), label="f")])

    def test_per_flow_algorithms(self, clean_path_topology):
        specs = [FlowSpec(src="a", dst="b", size=MB(100), label="f")]
        sim = MultiFlowSimulation(clean_path_topology, specs,
                                  algorithm={"f": "htcp"})
        progress = sim.run()
        assert progress["f"].done

    def test_aggregate_delivered(self, star_topology):
        specs = [FlowSpec(src="h1", dst="h2", size=MB(50), label="m1"),
                 FlowSpec(src="h3", dst="h4", size=MB(50), label="m2")]
        sim = MultiFlowSimulation(star_topology, specs)
        sim.run()
        assert sim.aggregate_delivered().bits >= MB(100).bits * 0.999

    def test_profile_lookup(self, clean_path_topology):
        sim = MultiFlowSimulation(
            clean_path_topology,
            [FlowSpec(src="a", dst="b", size=MB(1), label="f")])
        assert sim.profile_of("f").capacity.gbps == pytest.approx(10)
        with pytest.raises(ConfigurationError):
            sim.profile_of("ghost")


class TestFlowSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FlowSpec(src="a", dst="a")
        with pytest.raises(ConfigurationError):
            FlowSpec(src="a", dst="b", parallel_streams=0)
        with pytest.raises(ConfigurationError):
            FlowSpec(src="", dst="b")

    def test_per_stream_size(self):
        spec = FlowSpec(src="a", dst="b", size=GB(4), parallel_streams=4)
        assert spec.per_stream_size().gigabytes == pytest.approx(1.0)
        assert FlowSpec(src="a", dst="b").per_stream_size() is None

    def test_describe(self):
        spec = FlowSpec(src="a", dst="b", size=GB(4), parallel_streams=4,
                        label="demo")
        text = spec.describe()
        assert "demo" in text and "x4" in text

"""Tests pinning specific textual claims from the paper to behaviour.

Each test quotes the claim it encodes.  These are deliberately separate
from the module unit tests: they are the reproduction's contract with
the paper's prose, not with our own API.
"""

import numpy as np
import pytest

from repro.netsim import Link, Topology
from repro.netsim.packetsim import BurstySource, simulate_fan_in
from repro.tcp import Reno, TcpConnection
from repro.units import (
    GB,
    Gbps,
    KB,
    MB,
    Mbps,
    bytes_,
    ms,
    seconds,
)


def path(rate=Gbps(10), rtt=ms(50), loss=0.0, window=MB(256)):
    topo = Topology("claim")
    topo.add_host("a", nic_rate=rate)
    topo.add_host("b", nic_rate=rate)
    topo.connect("a", "b", Link(rate=rate, delay=ms(rtt.ms / 2),
                                mtu=bytes_(9000), loss_probability=loss))
    profile = topo.profile_between("a", "b")
    from dataclasses import replace
    return replace(profile, flow=profile.flow.with_(max_receive_window=window))


class TestSection21TcpSensitivity:
    """§2.1: 'even a tiny amount of packet loss is enough to dramatically
    reduce TCP performance' — 'the difference between a scientist
    completing a transfer in days rather than hours or minutes'."""

    def test_days_vs_hours_framing(self):
        size = GB(500)
        clean = TcpConnection(path(), algorithm=Reno()).transfer(size)
        dirty = TcpConnection(path(loss=1 / 22000), algorithm=Reno(),
                              rng=np.random.default_rng(1)).transfer(
            size, max_rounds=100_000)
        assert clean.duration.minutes < 60          # minutes
        assert dirty.duration.hours > 2             # many hours

    def test_sending_rate_reduced_then_slowly_recovers(self):
        """'TCP interprets the loss as network congestion ... rapidly
        reducing the overall sending rate.  The sending rate then slowly
        recovers'."""
        profile = path(loss=1e-4)
        result = TcpConnection(profile, algorithm=Reno(),
                               rng=np.random.default_rng(2)).measure(
            seconds(60), max_rounds=100_000)
        t, cwnd, _ = result.sample_arrays()
        drops = np.diff(cwnd) < -cwnd[:-1] * 0.3   # multiplicative cuts
        growth = np.diff(cwnd) > 0
        assert drops.any(), "must show rapid reductions"
        assert growth.sum() > drops.sum() * 3, \
            "recovery takes many more rounds than the cut"


class TestSection22FeedbackAndLatency:
    """§2.1: 'This problem is exacerbated as the latency increases
    between communicating hosts.'"""

    def test_same_loss_worse_at_higher_latency(self):
        loss = 1 / 22000
        rates = {}
        for rtt_ms in (5, 20, 80):
            result = TcpConnection(path(rtt=ms(rtt_ms), loss=loss),
                                   algorithm=Reno(),
                                   rng=np.random.default_rng(3)).measure(
                seconds(60), max_rounds=150_000)
            rates[rtt_ms] = result.mean_throughput.bps
        assert rates[5] > rates[20] > rates[80]


class TestSection32NicMatching:
    """§3.2: 'if the network connection from the site to the WAN is
    1 Gigabit Ethernet, a 10 Gigabit Ethernet interface on the DTN may
    be counterproductive ... a high-performance DTN can overwhelm the
    slower wide area link causing packet loss.'"""

    def test_fast_nic_overruns_slow_wan(self):
        def loss_with_nic(line_rate):
            src = BurstySource(name="dtn", line_rate=line_rate,
                               mean_rate=Mbps(800), burst_size=MB(1))
            result = simulate_fan_in(
                [src], egress_rate=Gbps(1), buffer_size=KB(256),
                duration=seconds(1.0), rng=np.random.default_rng(4))
            return result.loss_fraction

        matched = loss_with_nic(Gbps(1))
        overpowered = loss_with_nic(Gbps(10))
        # The matched NIC sees at most trace loss from burst-start jitter
        # overlap; the 10G NIC's line-rate bursts hammer the 1G link.
        assert matched < 0.005
        assert overpowered > 0.05
        assert overpowered > 50 * matched

    def test_deep_border_buffer_mitigates(self):
        src = BurstySource(name="dtn", line_rate=Gbps(10),
                           mean_rate=Mbps(800), burst_size=MB(1))
        deep = simulate_fan_in([src], egress_rate=Gbps(1),
                               buffer_size=MB(32), duration=seconds(1.0),
                               rng=np.random.default_rng(5))
        assert deep.loss_fraction == pytest.approx(0.0, abs=1e-9)


class TestSection34LocalAccess:
    """§3.4: 'Users at the local site who access resources on their
    local Science DMZ through the lab or campus perimeter firewall will
    typically get reasonable performance, since the latency between the
    local users and the local Science DMZ is low (even if the firewall
    causes some loss), TCP can recover quickly.'"""

    def test_firewall_loss_tolerable_at_lan_rtt(self):
        loss = 0.001  # a lossy firewall
        lan = TcpConnection(path(rate=Gbps(1), rtt=ms(0.5), loss=loss,
                                 window=MB(4)),
                            algorithm=Reno(),
                            rng=np.random.default_rng(6)).measure(
            seconds(30), max_rounds=200_000)
        wan = TcpConnection(path(rate=Gbps(1), rtt=ms(40), loss=loss,
                                 window=MB(4)),
                            algorithm=Reno(),
                            rng=np.random.default_rng(6)).measure(
            seconds(30), max_rounds=200_000)
        # LAN user: hundreds of Mbps despite the loss; WAN user: starved.
        assert lan.mean_throughput.mbps > 300
        assert wan.mean_throughput.mbps < lan.mean_throughput.mbps / 5


class TestExecutionModeCrossValidation:
    """The analytic transfer composition must agree with the full
    multi-flow simulation where their assumptions coincide."""

    def test_modes_agree_on_clean_path(self):
        from repro.core import simple_science_dmz
        from repro.dtn import Dataset, TransferPlan
        bundle = simple_science_dmz()
        plan = TransferPlan(bundle.topology, "remote-dtn", "dtn1",
                            Dataset("xval", GB(50), 50), "gridftp",
                            policy=bundle.science_policy)
        analytic = plan.execute()
        simulated = plan.execute_multiflow()
        assert simulated.duration.s == pytest.approx(analytic.duration.s,
                                                     rel=0.25)
        assert simulated.limiting_factor == analytic.limiting_factor

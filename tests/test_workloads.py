"""Tests for workload and traffic generation."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads import (
    BackgroundProfile,
    CARBON14_INPUTS,
    FileSizeDistribution,
    LHC_DAILY_REPLICATION,
    NOAA_GEFS_FULL_PULL,
    NOAA_GEFS_SAMPLE,
    climate_archive_pull,
    enterprise_background_sources,
    lhc_tier2_fanin,
    lightsource_bursts,
    make_dataset,
)
from repro.units import GB, Kbps, MB, Mbps, TB, minutes


class TestNamedDatasets:
    def test_noaa_sample_matches_paper(self):
        # §6.3: "273 files with a total size of 239.5GB".
        assert NOAA_GEFS_SAMPLE.file_count == 273
        assert NOAA_GEFS_SAMPLE.total_size.gigabytes == pytest.approx(239.5)

    def test_noaa_full_pull(self):
        assert NOAA_GEFS_FULL_PULL.total_size.terabytes == pytest.approx(170)

    def test_carbon14_matches_paper(self):
        # §6.4: 20 files of ~33 GB.
        assert CARBON14_INPUTS.file_count == 20
        assert CARBON14_INPUTS.mean_file_size.gigabytes == pytest.approx(33)

    def test_lhc_scale(self):
        assert LHC_DAILY_REPLICATION.total_size.terabytes == pytest.approx(100)


class TestMakeDataset:
    def test_by_file_count(self):
        ds = make_dataset("d", GB(100), file_count=50)
        assert ds.file_count == 50

    def test_by_mean_file(self):
        ds = make_dataset("d", GB(100), mean_file=GB(2))
        assert ds.file_count == 50

    def test_exactly_one_spec_required(self):
        with pytest.raises(ConfigurationError):
            make_dataset("d", GB(1))
        with pytest.raises(ConfigurationError):
            make_dataset("d", GB(1), file_count=1, mean_file=GB(1))


class TestFileSizeDistribution:
    def test_sample_count_and_floor(self, rng):
        dist = FileSizeDistribution(median=MB(100), sigma=1.5, floor=MB(1))
        sizes = dist.sample(500, rng)
        assert len(sizes) == 500
        assert all(s.bits >= MB(1).bits for s in sizes)

    def test_median_approximately_respected(self, rng):
        dist = FileSizeDistribution(median=MB(100), sigma=1.0)
        sizes = sorted(s.bits for s in dist.sample(2001, rng))
        median = sizes[1000]
        assert median == pytest.approx(MB(100).bits, rel=0.25)

    def test_sample_dataset(self, rng):
        dist = FileSizeDistribution(median=MB(10))
        ds = dist.sample_dataset("synth", 100, rng)
        assert ds.file_count == 100
        assert ds.total_size.bits > 0

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            FileSizeDistribution(median=MB(0))
        dist = FileSizeDistribution(median=MB(10))
        with pytest.raises(ConfigurationError):
            dist.sample(0, rng)


class TestScienceWorkloads:
    def test_lhc_fanin_structure(self):
        wl = lhc_tier2_fanin(["site1", "site2", "site3"], "cluster",
                             per_site_size=GB(100))
        assert len(wl.flows) == 3
        assert all(f.dst == "cluster" for f in wl.flows)
        assert wl.total_bytes.gigabytes == pytest.approx(300)
        # Staggered starts.
        starts = [f.start.s for f in wl.flows]
        assert starts == sorted(starts) and starts[0] != starts[-1]

    def test_climate_pull_splits_evenly(self):
        wl = climate_archive_pull("archive", "home", total=TB(1),
                                  parallel_transfers=4)
        assert len(wl.flows) == 4
        assert wl.total_bytes.bits == pytest.approx(TB(1).bits)

    def test_lightsource_cycles(self):
        wl = lightsource_bursts("beamline", "compute",
                                dataset_per_cycle=GB(50), cycles=3,
                                cycle_gap=minutes(2))
        assert len(wl.flows) == 3
        assert wl.flows[2].start.s == pytest.approx(240)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            lhc_tier2_fanin([], "cluster")
        with pytest.raises(ConfigurationError):
            climate_archive_pull("a", "h", total=TB(1), parallel_transfers=0)
        with pytest.raises(ConfigurationError):
            lightsource_bursts("b", "c", dataset_per_cycle=GB(1), cycles=0)


class TestBackgroundTraffic:
    def test_aggregate_mean(self):
        profile = BackgroundProfile(flow_count=200, per_flow_mean=Kbps(500))
        assert profile.aggregate_mean.mbps == pytest.approx(100)

    def test_sources_generated(self):
        sources = enterprise_background_sources(count=50)
        assert len(sources) == 50
        assert all(s.mean_rate.bps <= s.line_rate.bps for s in sources)

    def test_flow_specs_bundled(self):
        profile = BackgroundProfile(flow_count=100)
        specs = profile.flow_specs("campus", "wan", bundle=10)
        assert len(specs) == 10
        total = sum(s.rate_limit.bps for s in specs)
        assert total == pytest.approx(profile.aggregate_mean.bps)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BackgroundProfile(flow_count=0)
        with pytest.raises(ConfigurationError):
            BackgroundProfile(per_flow_mean=Mbps(200),
                              per_flow_line_rate=Mbps(100))

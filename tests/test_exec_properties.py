"""Property-based invariants for the exec subsystem (hypothesis).

For *random* grids and seeds — not just the hand-picked ones in the
determinism suite — assert that:

* serial, parallel and cached ``sweep()`` runs return identical
  records in identical order (and render identical tables);
* per-point derived seeds are unique across distinct grid points and
  stable across repeated derivations.

Pool spin-up per example is real time, so the parallel property keeps
``max_examples`` modest; the pure-function seed properties run the
full default budget.
"""

from __future__ import annotations

import shutil
import tempfile

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.sweep import sweep
from repro.exec import ResultCache, canonical_json, derive_seed

#: Grid values: JSON-exact scalars (the cacheable value domain), no
#: NaN (breaks equality) and no -0.0/+0.0 aliasing (two params that
#: compare equal must be allowed to share a seed).
grid_values = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.text(alphabet="abcxyz:error ", max_size=8),
    st.floats(min_value=-1e6, max_value=1e6,
              allow_nan=False, allow_infinity=False).filter(lambda v: v != 0),
)

grids = st.dictionaries(
    keys=st.text(alphabet="pqrst", min_size=1, max_size=4),
    values=st.lists(grid_values, min_size=1, max_size=3, unique=True),
    min_size=1, max_size=3,
)

param_dicts = st.dictionaries(
    keys=st.text(alphabet="pqrst", min_size=1, max_size=4),
    values=grid_values,
    min_size=1, max_size=4,
)


def fingerprint(**params):
    """Deterministic, order-insensitive function of the grid point."""
    return canonical_json(params)


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(grid=grids)
def test_serial_parallel_cached_identical(grid):
    serial = sweep(fingerprint, grid)
    parallel = sweep(fingerprint, grid, workers=2)
    assert parallel.records == serial.records
    assert (parallel.table("t").render_text()
            == serial.table("t").render_text())

    tmp = tempfile.mkdtemp(prefix="repro-exec-prop-")
    try:
        cache = ResultCache(tmp)
        populated = sweep(fingerprint, grid, cache=cache)
        replayed = sweep(fingerprint, grid, cache=cache)
        assert populated.records == serial.records
        assert replayed.records == serial.records
        assert replayed.stats["evaluated"] == 0
        assert (replayed.table("t").render_text()
                == serial.table("t").render_text())
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(grid=grids, base_seed=st.integers(min_value=0, max_value=2**32))
def test_seeded_runs_identical_and_ordered(grid, base_seed):
    assert "seed" not in grid  # alphabet keeps the name free

    serial = sweep(fingerprint, grid, base_seed=base_seed,
                   seed_param="seed")
    parallel = sweep(fingerprint, grid, base_seed=base_seed,
                     seed_param="seed", workers=2)
    assert parallel.records == serial.records
    # Grid order is the cartesian-product order, regardless of pool.
    assert [r.params for r in parallel.records] == \
        [r.params for r in serial.records]


@settings(deadline=None)
@given(points=st.lists(param_dicts, min_size=1, max_size=10,
                       unique_by=canonical_json),
       base_seed=st.integers(min_value=0, max_value=2**63 - 1))
def test_derived_seeds_unique_and_stable(points, base_seed):
    seeds = [derive_seed(base_seed, p) for p in points]
    again = [derive_seed(base_seed, p) for p in points]
    assert seeds == again, "seed derivation must be pure"
    assert len(set(seeds)) == len(points), \
        "distinct grid points must get distinct seeds"
    assert all(0 <= s < 2**64 for s in seeds)


@settings(deadline=None)
@given(params=param_dicts,
       seed_a=st.integers(min_value=0, max_value=2**32),
       seed_b=st.integers(min_value=0, max_value=2**32))
def test_base_seed_changes_derived_seed(params, seed_a, seed_b):
    if seed_a == seed_b:
        assert derive_seed(seed_a, params) == derive_seed(seed_b, params)
    else:
        assert derive_seed(seed_a, params) != derive_seed(seed_b, params)


@settings(deadline=None)
@given(params=param_dicts)
def test_canonical_json_is_order_insensitive(params):
    reordered = dict(reversed(list(params.items())))
    assert canonical_json(params) == canonical_json(reordered)

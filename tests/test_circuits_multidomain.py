"""Tests for multi-domain circuit provisioning (§7.1 DYNES/IDC)."""

import pytest

from repro.circuits import (
    Domain,
    InterDomainController,
    OscarsService,
    ReservationRequest,
)
from repro.errors import CapacityError, ConfigurationError, RoutingError
from repro.netsim import Link, Topology
from repro.netsim.node import Router
from repro.units import Gbps, bytes_, hours, ms, seconds


def make_domain(name: str, host: str, exchange: str, *,
                delay=ms(2), rate=Gbps(100), fraction=0.8) -> Domain:
    topo = Topology(name)
    topo.add_host(host, nic_rate=Gbps(10))
    topo.add_node(Router(name=exchange))
    topo.connect(host, exchange, Link(rate=rate, delay=delay,
                                      mtu=bytes_(9000)))
    return Domain(name=name, topology=topo,
                  oscars=OscarsService(topo, reservable_fraction=fraction))


def make_transit(name: str, a: str, b: str, *, rate=Gbps(100)) -> Domain:
    topo = Topology(name)
    topo.add_node(Router(name=a))
    topo.add_node(Router(name=b))
    topo.connect(a, b, Link(rate=rate, delay=ms(15), mtu=bytes_(9000)))
    return Domain(name=name, topology=topo, oscars=OscarsService(topo))


@pytest.fixture
def three_domain_idc():
    """campus-a -- regional -- campus-b, DYNES style."""
    campus_a = make_domain("campus-a", "dtn-a", "xp-west")
    regional = make_transit("regional", "xp-west", "xp-east")
    campus_b = make_domain("campus-b", "dtn-b", "xp-east")
    idc = InterDomainController(
        [campus_a, regional, campus_b],
        [("campus-a", "regional", "xp-west"),
         ("regional", "campus-b", "xp-east")],
    )
    return idc


class TestConstruction:
    def test_peering_requires_shared_exchange(self):
        a = make_domain("a", "h1", "x1")
        b = make_domain("b", "h2", "x2")
        with pytest.raises(ConfigurationError):
            InterDomainController([a, b], [("a", "b", "x-nowhere")])

    def test_unknown_domain_in_peering(self):
        a = make_domain("a", "h1", "x1")
        with pytest.raises(ConfigurationError):
            InterDomainController([a], [("a", "ghost", "x1")])

    def test_duplicate_domain_rejected(self):
        a = make_domain("a", "h1", "x1")
        a2 = make_domain("a", "h3", "x3")
        with pytest.raises(ConfigurationError):
            InterDomainController([a, a2], [])

    def test_domain_of(self, three_domain_idc):
        assert three_domain_idc.domain_of("dtn-a").name == "campus-a"
        assert three_domain_idc.domain_of("dtn-b").name == "campus-b"
        with pytest.raises(ConfigurationError):
            three_domain_idc.domain_of("nobody")

    def test_exchange_nodes_not_owned(self, three_domain_idc):
        # xp-west exists in two domains but is an exchange, not a host.
        with pytest.raises(ConfigurationError):
            three_domain_idc.domain_of("xp-west")


class TestRouting:
    def test_domain_route(self, three_domain_idc):
        assert three_domain_idc.domain_route("campus-a", "campus-b") == [
            "campus-a", "regional", "campus-b"]

    def test_unpeered_domains_unroutable(self):
        a = make_domain("a", "h1", "x1")
        b = make_domain("b", "h2", "x1")  # same exchange name but no peering
        idc = InterDomainController([a, b], [])
        with pytest.raises(RoutingError):
            idc.domain_route("a", "b")


class TestProvisioning:
    def test_end_to_end_reservation(self, three_domain_idc):
        circuit = three_domain_idc.reserve_end_to_end(
            "dtn-a", "dtn-b", Gbps(5), start=seconds(0), end=hours(2))
        assert circuit.domain_count == 3
        assert len(circuit.segments) == 3
        assert circuit.bandwidth.gbps == 5
        # Every participating OSCARS holds one segment.
        for name in ("campus-a", "regional", "campus-b"):
            domain = three_domain_idc._domains[name]
            assert len(domain.oscars.active()) == 1

    def test_stitched_profile(self, three_domain_idc):
        circuit = three_domain_idc.reserve_end_to_end(
            "dtn-a", "dtn-b", Gbps(5), start=seconds(0), end=hours(2))
        profile = circuit.profile
        assert profile.capacity.gbps == pytest.approx(5)
        # 2 + 15 + 2 ms one-way -> 38 ms RTT.
        assert profile.base_rtt.ms == pytest.approx(38, rel=0.05)
        assert profile.random_loss == 0.0

    def test_circuit_usable_for_tcp(self, three_domain_idc):
        from repro.tcp import HTcp, TcpConnection
        from repro.units import GB, MB
        from dataclasses import replace
        circuit = three_domain_idc.reserve_end_to_end(
            "dtn-a", "dtn-b", Gbps(5), start=seconds(0), end=hours(2))
        profile = replace(
            circuit.profile,
            flow=circuit.profile.flow.with_(max_receive_window=MB(256)))
        result = TcpConnection(profile, algorithm=HTcp()).transfer(GB(10))
        assert result.mean_throughput.gbps == pytest.approx(5, rel=0.15)

    def test_all_or_nothing_rollback(self, three_domain_idc):
        # Fill campus-b's reservable headroom (100G access x 0.8 = 80G).
        campus_b = three_domain_idc._domains["campus-b"]
        campus_b.oscars.reserve(ReservationRequest(
            "dtn-b", "xp-east", Gbps(78), seconds(0), hours(4)))
        with pytest.raises(CapacityError):
            three_domain_idc.reserve_end_to_end(
                "dtn-a", "dtn-b", Gbps(5), start=seconds(0), end=hours(2))
        # Rollback: no stray segments left in the upstream domains.
        assert three_domain_idc._domains["campus-a"].oscars.active() == []
        assert three_domain_idc._domains["regional"].oscars.active() == []

    def test_release(self, three_domain_idc):
        circuit = three_domain_idc.reserve_end_to_end(
            "dtn-a", "dtn-b", Gbps(5), start=seconds(0), end=hours(2))
        three_domain_idc.release(circuit)
        assert three_domain_idc.active() == []
        for domain in three_domain_idc._domains.values():
            assert domain.oscars.active() == []

    def test_double_release_rejected(self, three_domain_idc):
        circuit = three_domain_idc.reserve_end_to_end(
            "dtn-a", "dtn-b", Gbps(5), start=seconds(0), end=hours(2))
        three_domain_idc.release(circuit)
        with pytest.raises(ConfigurationError):
            three_domain_idc.release(circuit)

    def test_concurrent_circuits_share_capacity(self, three_domain_idc):
        # Regional backbone: 100G x 0.8 = 80G reservable.
        c1 = three_domain_idc.reserve_end_to_end(
            "dtn-a", "dtn-b", Gbps(4), start=seconds(0), end=hours(2))
        c2 = three_domain_idc.reserve_end_to_end(
            "dtn-a", "dtn-b", Gbps(3), start=seconds(0), end=hours(2))
        assert len(three_domain_idc.active()) == 2
        assert c1.circuit_id != c2.circuit_id

    def test_describe(self, three_domain_idc):
        circuit = three_domain_idc.reserve_end_to_end(
            "dtn-a", "dtn-b", Gbps(5), start=seconds(0), end=hours(2))
        text = circuit.describe()
        assert "campus-a -> regional -> campus-b" in text

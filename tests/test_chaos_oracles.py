"""Invariant-oracle unit tests: each must hold on a healthy run and
fire on a specifically corrupted observation."""

from __future__ import annotations

import types

import pytest

from repro.chaos import (
    ORACLES,
    ProfileTimeline,
    RunObservation,
    candidate_removals,
    check_bounded,
    check_monotonic,
    default_oracles,
    evaluate_oracles,
    get_oracle,
    register_oracle,
    shrink_schedule,
)
from repro.chaos.oracles import _miss_probability
from repro.errors import ConfigurationError
from repro.experiment.spec import FaultSpec, MeshSpec, ScenarioSpec
from repro.perfsonar.archive import Metric
from repro.scenario import Scenario
from repro.units import seconds


def schedule(**overrides) -> ScenarioSpec:
    base = dict(
        name="obs", seed=5, until_s=1500.0,
        mesh=MeshSpec(hosts=("dmz-perfsonar", "remote-dtn")),
        faults=(FaultSpec(kind="duplex", at_s=400.0),),
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def observe(spec: ScenarioSpec) -> RunObservation:
    """One schedule run packaged exactly as the campaign runner does."""
    scenario = Scenario.from_spec(spec)
    timeline = ProfileTimeline.install(scenario, spec)
    outcome = scenario.run(until=seconds(spec.until_s))
    mesh = scenario.mesh
    return RunObservation(
        spec=spec, outcome=outcome, timeline=timeline,
        packet_ledger=list(mesh.packet_ledger),
        unreachable=list(mesh.unreachable_events))


@pytest.fixture(scope="module")
def healthy() -> RunObservation:
    return observe(schedule())


class TestHelpers:
    def test_check_monotonic(self):
        assert check_monotonic([1.0, 2.0, 2.0, 3.0]) == []
        assert check_monotonic([1.0, 0.5])
        assert check_monotonic([1.0, 1.0], strict=True)

    def test_check_bounded(self):
        assert check_bounded(0.5, 0.0, 1.0) == []
        assert check_bounded(1.5, 0.0, 1.0)
        assert check_bounded(float("nan"), 0.0, 1.0)

    def test_miss_probability(self):
        # 2% loss over 20k packets: missing even one session is
        # astronomically unlikely.
        assert _miss_probability(0.02, 20_000, 1, 1e-4) < 1e-100
        # Zero sessions in the window: missing is certain.
        assert _miss_probability(0.02, 20_000, 0, 1e-4) == 1.0
        assert _miss_probability(0.0, 20_000, 10, 1e-4) == 1.0
        # Loss at the threshold scale: plausibly missed.
        assert _miss_probability(1e-5, 100, 1, 1e-4) > 0.9


class TestRegistry:
    def test_default_oracles_sorted_and_complete(self):
        names = default_oracles()
        assert names == tuple(sorted(ORACLES))
        assert "packets-conserved" in names
        assert "detection-within-bound" in names

    def test_unknown_oracle_names_known_ones(self):
        with pytest.raises(ConfigurationError, match="packets-conserved"):
            get_oracle("no-such-oracle")

    def test_bad_params_raise_configuration_error(self, healthy):
        with pytest.raises(ConfigurationError, match="mesh-cadence"):
            evaluate_oracles(healthy,
                             [("mesh-cadence", {"bogus_param": 1})])

    def test_register_oracle_round_trip(self, healthy):
        try:
            register_oracle("always-fires", lambda obs: ["boom"],
                            description="test-only")
            out = evaluate_oracles(healthy, [("always-fires", {})])
            assert out == {"always-fires": ["boom"]}
        finally:
            ORACLES.pop("always-fires", None)


class TestOraclesOnHealthyRun:
    def test_every_default_oracle_holds(self, healthy):
        items = [(name, {}) for name in default_oracles()]
        assert evaluate_oracles(healthy, items) == {}

    def test_timeline_snapshots_cover_fault(self, healthy):
        pair = ("dmz-perfsonar", "remote-dtn")
        states = healthy.timeline.states[pair]
        assert states[0].t == 0.0 and states[0].reachable
        # The post-onset snapshot sees the duplex capacity collapse.
        post = [s for s in states if s.t > 400.0]
        assert post and post[0].capacity_bps < states[0].capacity_bps

    def test_states_around_straddles_transition(self, healthy):
        pair = ("dmz-perfsonar", "remote-dtn")
        # A probe firing at the exact fault instant may see either
        # side: both the pre-fault state and the epsilon-later
        # post-fault snapshot must be candidates.
        around = healthy.timeline.states_around(pair, 400.0)
        assert len(around) >= 2
        assert any(s.t <= 400.0 for s in around)
        assert any(s.t > 400.0 for s in around)


class TestOraclesFire:
    def test_packets_conserved_catches_tampered_archive(self):
        obs = observe(schedule(name="tamper"))
        t, src, dst, sent, lost = obs.packet_ledger[3]
        # Rewrite the archived loss sample so it disagrees with the
        # ledger; the conservation walk must flag exactly that time.
        times, values = obs.outcome.archive._series[
            (src, dst, Metric.LOSS_RATE)]
        values[times.index(t)] = (lost + 1) / sent
        out = evaluate_oracles(obs, [("packets-conserved", {})])
        assert any(f"t={t}" in msg
                   for msg in out.get("packets-conserved", []))

    def test_packets_conserved_catches_impossible_count(self, healthy):
        obs = observe(schedule(name="count"))
        t, src, dst, sent, _ = obs.packet_ledger[0]
        obs.packet_ledger[0] = (t, src, dst, sent, sent + 5)
        out = evaluate_oracles(obs, [("packets-conserved", {})])
        assert any("impossible" in m
                   for m in out.get("packets-conserved", []))

    def test_event_time_monotonic_catches_regression(self):
        obs = observe(schedule(name="clock"))
        key = ("dmz-perfsonar", "remote-dtn", Metric.LOSS_RATE)
        times, _ = obs.outcome.archive._series[key]
        times[2] = times[1] - 30.0
        out = evaluate_oracles(obs, [("event-time-monotonic", {})])
        assert out.get("event-time-monotonic")

    def test_throughput_capacity_catches_impossible_sample(self):
        obs = observe(schedule(name="cap"))
        obs.outcome.archive.record_value(
            1400.0, "dmz-perfsonar", "remote-dtn",
            Metric.THROUGHPUT_BPS, 1e12)  # 1 Tbps on a 10G path
        out = evaluate_oracles(obs, [("throughput-capacity", {})])
        assert any("exceeds true path capacity" in m
                   for m in out.get("throughput-capacity", []))

    def test_detection_oracle_fires_when_alerts_suppressed(self):
        obs = observe(schedule(name="miss"))
        # Pretend the alerter never saw the 2% duplex fault.
        obs.outcome.detection_delays = {0: None}
        out = evaluate_oracles(obs, [("detection-within-bound",
                                      {"bound_s": 600.0})])
        assert any("never detected" in m
                   for m in out.get("detection-within-bound", []))

    def test_detection_oracle_skips_statistically_missable(self):
        obs = observe(schedule(name="gate"))
        obs.outcome.detection_delays = {0: None}
        # An absurdly tight bound leaves zero sessions in the window,
        # so enforcement would be guessing: the oracle must skip.
        out = evaluate_oracles(obs, [("detection-within-bound",
                                      {"bound_s": 5.0})])
        assert out == {}

    def test_transfer_terminates_taxonomy(self, healthy):
        obs = observe(schedule(name="xfer"))
        cases = [
            ({"status": "completed", "duration_s": 10.0,
              "max_duration_s": 60.0}, []),
            ({"status": "failed", "is_repro_error": True,
              "error_type": "TransferError", "error": "x"}, []),
            ({"status": "completed", "duration_s": 100.0,
              "max_duration_s": 60.0}, ["hang"]),
            ({"status": "failed", "is_repro_error": False,
              "error_type": "ZeroDivisionError", "error": "x"},
             ["taxonomized"]),
            ({"status": "crashed", "error": "boom"}, ["unexpected"]),
        ]
        for record, expect in cases:
            obs.transfer = record
            out = evaluate_oracles(obs, [("transfer-terminates", {})])
            msgs = out.get("transfer-terminates", [])
            if expect:
                assert any(expect[0] in m for m in msgs), (record, msgs)
            else:
                assert msgs == [], (record, msgs)

    def test_mesh_cadence_catches_silent_mesh(self):
        obs = observe(schedule(name="silent"))
        key = ("dmz-perfsonar", "remote-dtn", Metric.LOSS_RATE)
        times, values = obs.outcome.archive._series[key]
        del times[5:], values[5:]  # the mesh "dies" mid-run
        out = evaluate_oracles(obs, [("mesh-cadence", {})])
        assert any("went silent" in m for m in out.get("mesh-cadence", []))


class TestShrink:
    def make(self, n_faults):
        return schedule(name="shrink", faults=tuple(
            FaultSpec(kind="duplex", at_s=300.0 + 10.0 * i)
            for i in range(n_faults)))

    def test_candidate_removals_enumerates_every_deletion(self):
        spec = self.make(3)
        cands = candidate_removals(spec)
        assert len(cands) == 3
        assert all(len(c.faults) == 2 for c in cands)
        assert candidate_removals(schedule(name="empty", faults=())) == []

    def test_shrink_finds_single_culprit(self):
        # Synthetic verdicts: only schedules still containing the fault
        # at t=320 violate.  ddmin must strip everything else.
        def evaluate(candidates):
            return [{"detector": ["bad"]}
                    if any(f.at_s == 320.0 for f in c.faults) else {}
                    for c in candidates]

        minimal = shrink_schedule(self.make(4), {"detector"}, evaluate)
        assert [f.at_s for f in minimal.faults] == [320.0]

    def test_shrink_keeps_original_when_nothing_smaller_fails(self):
        spec = self.make(2)
        minimal = shrink_schedule(spec, {"detector"},
                                  lambda cands: [{} for _ in cands])
        assert minimal == spec

    def test_shrink_ignores_different_failures(self):
        # Candidates that trip a *different* oracle must not be
        # accepted — the search stays on the original failure.
        def evaluate(candidates):
            return [{"other-oracle": ["noise"]} for _ in candidates]

        spec = self.make(2)
        assert shrink_schedule(spec, {"detector"}, evaluate) == spec


class TestMeshCadenceStub:
    def test_expected_count_uses_staggered_offsets(self):
        """The cadence oracle reproduces the mesh's own schedule math."""
        obs = observe(schedule(name="cadence"))
        items = [("mesh-cadence", {"slack_sessions": 0})]
        assert evaluate_oracles(obs, items) == {}

    def test_stub_observation_shapes(self):
        # The oracle only needs .spec/.outcome/.timeline duck-typing —
        # documented so the hypothesis machine can reuse it cheaply.
        ns = types.SimpleNamespace
        obs = observe(schedule(name="duck"))
        assert isinstance(obs.timeline.states, dict)
        assert ns(states=obs.timeline.states).states is obs.timeline.states

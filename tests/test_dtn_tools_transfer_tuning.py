"""Tests for transfer tools, the transfer planner, and the tuning audit."""

import numpy as np
import pytest

from repro.dtn.host import attach_profile, tuned_dtn, untuned_host
from repro.dtn.storage import ParallelFilesystem, SingleDisk
from repro.dtn.tools import TOOL_REGISTRY, TransferTool, register_tool, tool_by_name
from repro.dtn.transfer import Dataset, TransferPlan
from repro.dtn.tuning import audit_host, REQUIRED_CHECKS
from repro.errors import ConfigurationError, TransferError
from repro.netsim import Link, Topology
from repro.units import GB, Gbps, KB, MB, MBps, bytes_, ms


class TestTools:
    def test_registry_contents(self):
        for name in ("ftp", "scp", "hpn-scp", "gridftp", "globus", "fdt",
                     "xrootd"):
            assert tool_by_name(name).name == name

    def test_unknown_tool(self):
        with pytest.raises(ConfigurationError):
            tool_by_name("rsync-over-carrier-pigeon")

    def test_ftp_window_cap(self):
        ftp = tool_by_name("ftp")
        assert ftp.effective_window(MB(256)).bits == KB(64).bits

    def test_hpn_scp_removes_cap(self):
        hpn = tool_by_name("hpn-scp")
        assert hpn.effective_window(MB(256)).bits == MB(256).bits

    def test_scp_cipher_cap(self):
        assert tool_by_name("scp").per_stream_rate_cap().MBps == pytest.approx(60)

    def test_with_streams(self):
        g8 = tool_by_name("gridftp").with_streams(8)
        assert g8.streams == 8
        assert tool_by_name("gridftp").streams == 4  # original untouched

    def test_register_custom(self):
        register_tool(TransferTool(name="test-tool", streams=2))
        assert tool_by_name("test-tool").streams == 2
        del TOOL_REGISTRY["test-tool"]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TransferTool(name="bad", streams=0)
        with pytest.raises(ConfigurationError):
            TransferTool(name="bad", checksum_overhead=1.0)


class TestDataset:
    def test_mean_file_size(self):
        ds = Dataset("d", GB(200), 100)
        assert ds.mean_file_size.gigabytes == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Dataset("d", GB(0), 1)
        with pytest.raises(ConfigurationError):
            Dataset("d", GB(1), 0)

    def test_describe(self):
        assert "273 files" in Dataset("noaa", GB(239.5), 273).describe()


def wan_pair(*, loss=0.0, rtt_ms=40, src_profile=None, dst_profile=None):
    topo = Topology("pair")
    src = topo.add_host("src", nic_rate=Gbps(10))
    dst = topo.add_host("dst", nic_rate=Gbps(10))
    topo.connect("src", "dst", Link(rate=Gbps(10),
                                    delay=ms(rtt_ms / 2),
                                    mtu=bytes_(9000),
                                    loss_probability=loss))
    attach_profile(src, src_profile or tuned_dtn("src", ParallelFilesystem()))
    attach_profile(dst, dst_profile or tuned_dtn("dst", ParallelFilesystem()))
    return topo


class TestTransferPlan:
    def test_clean_dtn_transfer_is_fast(self):
        topo = wan_pair()
        plan = TransferPlan(topo, "src", "dst", Dataset("d", GB(100), 100),
                            "gridftp")
        report = plan.execute()
        assert report.mean_throughput.gbps > 1.5
        assert report.duration.minutes < 10

    def test_ftp_crawls_due_to_window_cap(self):
        topo = wan_pair()
        report = TransferPlan(topo, "src", "dst",
                              Dataset("d", GB(10), 10), "ftp").execute()
        # 64 KB window at 40 ms RTT -> ~13 Mbps -> ~1.6 MB/s (§6.3!).
        assert report.mean_throughput.MBps < 3

    def test_tool_speedup_ordering(self):
        topo = wan_pair()
        ds = Dataset("d", GB(10), 10)
        rates = {
            name: TransferPlan(topo, "src", "dst", ds, name)
            .execute().mean_throughput.bps
            for name in ("ftp", "scp", "hpn-scp", "gridftp")
        }
        assert rates["ftp"] < rates["scp"] < rates["hpn-scp"] <= rates["gridftp"]

    def test_storage_limits_transfer(self):
        slow_disk = SingleDisk(sequential_rate=MBps(50))
        topo = wan_pair(dst_profile=tuned_dtn("dst", slow_disk))
        report = TransferPlan(topo, "src", "dst",
                              Dataset("d", GB(10), 10), "gridftp").execute()
        assert report.limiting_factor == "destination-storage"
        assert report.mean_throughput.MBps < 55

    def test_network_loss_limits_transfer(self):
        # Single stream so parallel streams cannot mask the loss.
        tool = tool_by_name("gridftp").with_streams(1)
        topo = wan_pair(loss=1 / 22000)
        rng = np.random.default_rng(1)
        report = TransferPlan(topo, "src", "dst",
                              Dataset("d", GB(10), 10), tool).execute(rng)
        assert report.limiting_factor == "network"
        clean = TransferPlan(wan_pair(), "src", "dst",
                             Dataset("d", GB(10), 10), tool).execute()
        assert report.duration.s > clean.duration.s

    def test_parallel_streams_help_under_loss(self):
        topo = wan_pair(loss=1 / 22000)
        ds = Dataset("d", GB(10), 10)
        one = TransferPlan(topo, "src", "dst", ds,
                           tool_by_name("gridftp").with_streams(1)).execute(
            np.random.default_rng(2))
        eight = TransferPlan(topo, "src", "dst", ds,
                             tool_by_name("gridftp").with_streams(8)).execute(
            np.random.default_rng(2))
        assert eight.duration.s < one.duration.s

    def test_many_small_files_pay_overhead(self):
        topo = wan_pair()
        few = TransferPlan(topo, "src", "dst",
                           Dataset("few", GB(10), 10), "scp").execute()
        many = TransferPlan(topo, "src", "dst",
                            Dataset("many", GB(10), 10_000), "scp").execute()
        assert many.duration.s > few.duration.s + 1000  # 10k x 0.8s / 1 stream

    def test_rng_required_for_lossy(self):
        topo = wan_pair(loss=0.001)
        plan = TransferPlan(topo, "src", "dst", Dataset("d", GB(1), 1),
                            "gridftp")
        with pytest.raises(TransferError):
            plan.execute()

    def test_checksum_overhead_slows_globus_slightly(self):
        topo = wan_pair()
        ds = Dataset("d", GB(100), 10)
        plain = TransferPlan(topo, "src", "dst", ds, "gridftp").execute()
        globus = TransferPlan(topo, "src", "dst", ds, "globus").execute()
        assert globus.duration.s > plain.duration.s

    def test_report_summary(self):
        topo = wan_pair()
        report = TransferPlan(topo, "src", "dst",
                              Dataset("d", GB(1), 1), "gridftp").execute()
        text = report.summary()
        assert "gridftp" in text and "MB/s" in text

    def test_congestion_algorithm_from_source_host(self):
        topo = wan_pair(src_profile=tuned_dtn("src", ParallelFilesystem()))
        plan = TransferPlan(topo, "src", "dst", Dataset("d", GB(1), 1),
                            "gridftp")
        assert plan._congestion_algorithm().name == "htcp"


class TestTuningAudit:
    def test_tuned_dtn_passes(self):
        prof = tuned_dtn("dtn", ParallelFilesystem())
        findings = audit_host(prof, target_rate=Gbps(10),
                              target_rtt=ms(50))
        assert all(f.passed for f in findings), [str(f) for f in findings]

    def test_untuned_host_fails_most_checks(self):
        prof = untuned_host("desktop")
        findings = audit_host(prof, target_rate=Gbps(10), target_rtt=ms(50))
        failed = {f.check for f in findings if not f.passed}
        assert "tcp-buffers" in failed
        assert "jumbo-frames" in failed
        assert "congestion-control" in failed
        assert "dedicated-system" in failed

    def test_buffer_check_scales_with_target(self):
        prof = tuned_dtn("dtn", ParallelFilesystem())  # 256 MB buffers
        ok = audit_host(prof, target_rate=Gbps(10), target_rtt=ms(50))
        strained = audit_host(prof, target_rate=Gbps(100), target_rtt=ms(100))
        assert [f for f in ok if f.check == "tcp-buffers"][0].passed
        assert not [f for f in strained if f.check == "tcp-buffers"][0].passed

    def test_storage_check(self):
        no_storage = untuned_host("x")
        finding = [f for f in audit_host(no_storage)
                   if f.check == "storage-rate"][0]
        assert not finding.passed

    def test_all_required_checks_run(self):
        findings = audit_host(tuned_dtn("d", ParallelFilesystem()))
        assert len(findings) == len(REQUIRED_CHECKS)

    def test_findings_render(self):
        finding = audit_host(untuned_host("x"))[0]
        assert "FAIL" in str(finding) or "PASS" in str(finding)

    def test_validation(self):
        from repro.units import DataRate
        with pytest.raises(ConfigurationError):
            audit_host(tuned_dtn(), target_rate=DataRate(0))

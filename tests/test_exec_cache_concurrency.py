"""ResultCache under concurrent writers and hostile on-disk state.

The multi-tenant experiment service (:mod:`repro.serve`) shares one
cache across scheduler threads, and pooled sweeps in separate
processes share one cache *directory* — so the store must keep two
promises under concurrency:

* a load never observes a torn entry (writes are atomic
  temp-file+rename) and never raises on garbage another tool left
  behind — it degrades to a counted miss;
* counters stay exact when one cache object is hammered from many
  threads (hits + misses == loads, no lost increments).
"""

from __future__ import annotations

import json
import multiprocessing
import sys
import threading

import pytest

from repro.exec.cache import ResultCache

KEYS = 8
ROUNDS = 40


def _entry_kwargs(i: int):
    return {
        "fn_id": "tests.fake_fn",
        "params": {"i": i},
        "seed": None,
        "version": "v1",
        "value": {"i": i, "answer": [i, i * 2, "x" * 64]},
    }


def _hammer(cache: ResultCache, keys, results, idx):
    """Worker: interleave stores and loads over a shared key set."""
    ok = True
    for round_no in range(ROUNDS):
        for i, key in enumerate(keys):
            cache.store(key, **_entry_kwargs(i))
            entry = cache.load(key)
            # A load may race the very first store of a key (miss) but
            # must never return a torn or wrong-valued entry.
            if entry is not None:
                ok = ok and entry["ok"] and entry["value"]["i"] == i
    results[idx] = ok


class TestConcurrentWriters:
    def test_threads_share_one_cache_object(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        keys = [cache.key("tests.fake_fn", {"i": i}, None, "v1")
                for i in range(KEYS)]
        n = 8
        results = [None] * n
        threads = [threading.Thread(target=_hammer,
                                    args=(cache, keys, results, t))
                   for t in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(results), "a thread observed a torn/wrong entry"
        stats = cache.stats()
        loads = n * ROUNDS * KEYS
        # Exact accounting: every load was either a hit or a miss, and
        # the locked counters lost nothing across 8 threads.
        assert stats["hits"] + stats["misses"] == loads
        assert stats["corrupt"] == 0
        assert stats["entries"] == KEYS
        assert stats["stores"] == loads  # every store round-tripped

    def test_concurrent_store_and_clear_never_raise(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        keys = [cache.key("tests.fake_fn", {"i": i}, None, "v1")
                for i in range(KEYS)]
        stop = threading.Event()
        errors = []

        def writer():
            try:
                while not stop.is_set():
                    for i, key in enumerate(keys):
                        cache.store(key, **_entry_kwargs(i))
            except Exception as exc:  # noqa: BLE001 - the assertion
                errors.append(exc)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(20):
                cache.clear()
        finally:
            stop.set()
            thread.join()
        assert not errors


def _process_hammer(root: str) -> bool:
    """Module-level for pickling: one process worth of store/load."""
    cache = ResultCache(root)
    keys = [cache.key("tests.fake_fn", {"i": i}, None, "v1")
            for i in range(KEYS)]
    results = [None]
    _hammer(cache, keys, results, 0)
    return bool(results[0])


@pytest.mark.skipif(sys.platform == "win32", reason="fork start method")
def test_processes_share_one_cache_directory(tmp_path):
    ctx = multiprocessing.get_context("fork")
    with ctx.Pool(4) as pool:
        outcomes = pool.map(_process_hammer,
                            [str(tmp_path / "cache")] * 4)
    assert all(outcomes)
    cache = ResultCache(tmp_path / "cache")
    assert len(cache) == KEYS
    for i in range(KEYS):
        key = cache.key("tests.fake_fn", {"i": i}, None, "v1")
        entry = cache.load(key)
        assert entry is not None and entry["value"]["i"] == i


class TestTornAndForeignFiles:
    """What a crashed writer or a stray tool could leave on disk."""

    def _planted(self, tmp_path, payload: bytes):
        cache = ResultCache(tmp_path / "cache")
        key = cache.key("tests.fake_fn", {"i": 0}, None, "v1")
        path = cache._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(payload)
        return cache, key

    @pytest.mark.parametrize("payload", [
        b"",                                # zero-length (crash mid-create)
        b'{"key": "abc", "ok": tru',        # truncated JSON
        b"\xff\xfe\x00garbage",             # not UTF-8 at all
        b"[1, 2, 3]",                       # valid JSON, wrong shape
        b'{"no_ok_field": 1}',              # dict without the marker
    ])
    def test_load_degrades_to_counted_miss(self, tmp_path, payload):
        cache, key = self._planted(tmp_path, payload)
        assert cache.load(key) is None
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["corrupt"] == 1

    def test_store_repairs_a_corrupt_entry(self, tmp_path):
        cache, key = self._planted(tmp_path, b"\xff\xfegarbage")
        assert cache.load(key) is None
        assert cache.store(key, **_entry_kwargs(0))
        entry = cache.load(key)
        assert entry is not None and entry["value"]["i"] == 0

    def test_tmp_files_are_invisible_to_len_and_load(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = cache.key("tests.fake_fn", {"i": 0}, None, "v1")
        assert cache.store(key, **_entry_kwargs(0))
        # Simulate an in-flight writer's temp file next to the entry.
        (cache._path(key).parent / "abc123.tmp").write_bytes(b"partial")
        assert len(cache) == 1
        assert cache.load(key) is not None

    def test_entry_file_is_valid_json_bytes(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = cache.key("tests.fake_fn", {"i": 3}, None, "v1")
        assert cache.store(key, **_entry_kwargs(3))
        on_disk = json.loads(cache._path(key).read_text(encoding="utf-8"))
        assert on_disk["key"] == key and on_disk["ok"] is True

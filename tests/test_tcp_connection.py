"""Tests for the fluid TCP connection model — the reproduction's engine."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.netsim import Link, Topology
from repro.tcp import HTcp, Reno, TcpConnection
from repro.tcp.mathis import mathis_throughput
from repro.units import GB, Gbps, KB, MB, bytes_, ms, seconds


def make_profile(*, rate=Gbps(10), one_way=ms(25), mtu=bytes_(9000),
                 loss=0.0, window=MB(256)):
    topo = Topology("t")
    topo.add_host("a", nic_rate=rate)
    topo.add_host("b", nic_rate=rate)
    topo.connect("a", "b", Link(rate=rate, delay=one_way, mtu=mtu,
                                loss_probability=loss))
    profile = topo.profile_between("a", "b")
    from dataclasses import replace
    return replace(profile, flow=profile.flow.with_(max_receive_window=window))


class TestLossFreeBehaviour:
    def test_fills_the_pipe_when_tuned(self):
        profile = make_profile()
        result = TcpConnection(profile, algorithm=HTcp()).transfer(GB(100))
        # 100 GB at ~10 Gbps is ~80 s; slow start adds a little.
        assert result.mean_throughput.gbps > 8.0
        assert result.timeouts == 0

    def test_window_limited_when_untuned(self):
        # 4 MB window on a 50 ms path: ~640 Mbps ceiling.
        profile = make_profile(window=MB(4))
        result = TcpConnection(profile).transfer(GB(10))
        assert result.mean_throughput.mbps == pytest.approx(640, rel=0.1)

    def test_64k_clamp_matches_eq2(self):
        # The Penn State pathology: 64 KB at 10 ms -> ~52 Mbps.
        profile = make_profile(one_way=ms(5), window=KB(64))
        result = TcpConnection(profile).transfer(GB(1))
        assert result.mean_throughput.mbps == pytest.approx(52, rel=0.1)

    def test_fast_forward_makes_large_transfers_cheap(self):
        profile = make_profile()
        result = TcpConnection(profile, algorithm=HTcp()).transfer(GB(4000))
        # 4 TB at 10 Gbps = ~53 min simulated; must not need 64k rounds.
        assert result.rounds < 10_000 or result.extrapolated is False
        assert result.duration.minutes == pytest.approx(53.3, rel=0.05)

    def test_deterministic_without_rng(self):
        profile = make_profile()
        a = TcpConnection(profile).transfer(GB(1))
        b = TcpConnection(profile).transfer(GB(1))
        assert a.duration.s == b.duration.s


class TestLossyBehaviour:
    def test_rng_required_for_lossy_paths(self):
        profile = make_profile(loss=1e-4)
        with pytest.raises(ConfigurationError):
            TcpConnection(profile)

    def test_tiny_loss_collapses_throughput(self):
        # The paper's core claim: 1/22000 loss wrecks a 10G 50ms-RTT path.
        clean = make_profile()
        dirty = make_profile(loss=1 / 22000)
        clean_rate = TcpConnection(clean, algorithm=Reno()).transfer(GB(10))
        dirty_rate = TcpConnection(
            dirty, algorithm=Reno(), rng=np.random.default_rng(1)
        ).transfer(GB(10), max_rounds=60_000)
        assert clean_rate.mean_throughput.bps > 10 * dirty_rate.mean_throughput.bps

    def test_loss_hurts_more_at_high_rtt(self):
        # §3.4: local users through the firewall are fine because TCP
        # recovers quickly at low RTT.
        loss = 1 / 22000
        lan = make_profile(one_way=ms(0.5), loss=loss)
        wan = make_profile(one_way=ms(50), loss=loss)
        lan_r = TcpConnection(lan, rng=np.random.default_rng(2)).transfer(
            GB(2), max_rounds=80_000)
        wan_r = TcpConnection(wan, rng=np.random.default_rng(2)).transfer(
            GB(2), max_rounds=80_000)
        assert lan_r.mean_throughput.bps > 3 * wan_r.mean_throughput.bps

    def test_htcp_beats_reno_under_loss(self):
        # Figure 1's measured separation.
        profile = make_profile(loss=1 / 22000)
        reno = TcpConnection(profile, algorithm=Reno(),
                             rng=np.random.default_rng(3)).transfer(
            GB(5), max_rounds=60_000)
        htcp = TcpConnection(profile, algorithm=HTcp(),
                             rng=np.random.default_rng(3)).transfer(
            GB(5), max_rounds=60_000)
        assert htcp.mean_throughput.bps > 1.5 * reno.mean_throughput.bps

    def test_reno_tracks_mathis_order_of_magnitude(self):
        profile = make_profile(loss=1e-4)
        result = TcpConnection(profile, algorithm=Reno(),
                               rng=np.random.default_rng(4)).transfer(
            GB(2), max_rounds=60_000)
        bound = mathis_throughput(profile.flow.mss, profile.base_rtt, 1e-4)
        ratio = result.mean_throughput.bps / bound.bps
        assert 0.3 < ratio < 3.0

    def test_loss_events_counted(self):
        profile = make_profile(loss=1e-3)
        result = TcpConnection(profile, rng=np.random.default_rng(5)).transfer(
            MB(500), max_rounds=60_000)
        assert result.loss_events > 0

    def test_severe_loss_triggers_timeouts(self):
        profile = make_profile(loss=0.05, window=MB(4))
        result = TcpConnection(profile, rng=np.random.default_rng(6)).transfer(
            MB(5), max_rounds=30_000)
        assert result.timeouts > 0

    def test_extrapolation_flagged(self):
        profile = make_profile(loss=1e-3)
        result = TcpConnection(profile, rng=np.random.default_rng(7)).transfer(
            GB(100), max_rounds=500)
        assert result.extrapolated
        assert result.bytes_delivered.bits == GB(100).bits


class TestShallowBuffers:
    def test_shallow_bottleneck_buffer_reduces_throughput(self):
        profile = make_profile()
        deep = TcpConnection(profile).transfer(GB(10))
        shallow = TcpConnection(profile, bottleneck_buffer=KB(512)).transfer(GB(10))
        assert shallow.mean_throughput.bps < deep.mean_throughput.bps

    def test_profile_buffer_used_by_default(self):
        from dataclasses import replace
        profile = replace(make_profile(), bottleneck_buffer=KB(512))
        auto = TcpConnection(profile)
        assert auto.buffer_segments == pytest.approx(
            KB(512).bits / profile.flow.mss.bits)


class TestMeasurement:
    def test_measure_runs_for_duration(self):
        profile = make_profile()
        result = TcpConnection(profile, algorithm=HTcp()).measure(seconds(10))
        assert result.duration.s >= 10
        assert result.bytes_delivered.bits > 0

    def test_measure_validates_duration(self):
        with pytest.raises(ConfigurationError):
            TcpConnection(make_profile()).measure(seconds(0))


class TestAnalyticShortcut:
    def test_steady_state_loss_free(self):
        profile = make_profile(window=MB(4))
        est = TcpConnection(profile).steady_state_throughput()
        assert est.mbps == pytest.approx(640, rel=0.01)

    def test_steady_state_with_loss_uses_mathis(self):
        profile = make_profile(loss=1e-4)
        conn = TcpConnection(profile, rng=np.random.default_rng(0))
        est = conn.steady_state_throughput()
        bound = mathis_throughput(profile.flow.mss, profile.base_rtt, 1e-4)
        assert est.bps == pytest.approx(bound.bps, rel=1e-9)


class TestResultObject:
    def test_samples_decimated(self):
        profile = make_profile(loss=1e-4)
        result = TcpConnection(profile, rng=np.random.default_rng(8)).transfer(
            GB(5), max_rounds=50_000)
        assert 0 < len(result.samples) <= 8192
        t, w, r = result.sample_arrays()
        assert len(t) == len(w) == len(r) == len(result.samples)
        assert np.all(np.diff(t) > 0)

    def test_summary_text(self):
        result = TcpConnection(make_profile()).transfer(GB(1))
        text = result.summary()
        assert "GB" in text and "reno" in text

    def test_transfer_size_validated(self):
        with pytest.raises(ConfigurationError):
            TcpConnection(make_profile()).transfer(GB(0))

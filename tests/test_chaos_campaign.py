"""Campaign-level acceptance: bit-reproducible reports, caching,
shrinking, artifacts, and the ``repro chaos`` CLI."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.chaos import (
    CampaignSpec,
    CampaignResult,
    FaultSpaceSpec,
    OracleSpec,
    TransferProbeSpec,
    render_report,
)
from repro.experiment import ExperimentSpec, RunContext, run_experiment

SPECS = pathlib.Path(__file__).parent.parent / "specs"


def quick_campaign(**overrides) -> CampaignSpec:
    base = dict(
        name="t-camp", seed=7, design="simple-science-dmz",
        until_s=1500.0,
        space=FaultSpaceSpec(onset_min_s=120.0, onset_max_s=900.0,
                             repair_fraction=0.25,
                             cuts=(("border", "wan"),), cut_fraction=0.25),
        schedules=4,
        transfer=TransferProbeSpec(size_gb=1.0, files=2),
        shrink=True, max_shrink=2)
    base.update(overrides)
    return CampaignSpec(**base)


def demo_campaign(**overrides) -> CampaignSpec:
    """The intentionally broken oracle: mathis-ceiling configured to
    bind in the light-loss regime the fluid model legitimately beats."""
    base = dict(
        name="t-demo", seed=21, design="simple-science-dmz",
        until_s=1500.0,
        space=FaultSpaceSpec(kinds=("linecard", "cpu"), min_faults=2,
                             max_faults=3, onset_min_s=120.0,
                             onset_max_s=600.0),
        schedules=2,
        oracles=(OracleSpec(name="mathis-ceiling",
                            params=(("min_loss", 1e-06),
                                    ("slack", 0.5))),),
        shrink=True, max_shrink=2)
    base.update(overrides)
    return CampaignSpec(**base)


class TestReportDeterminism:
    def test_serial_and_pooled_reports_identical(self):
        spec = quick_campaign()
        serial = run_experiment(spec, RunContext(workers=1), persist=False)
        pooled = run_experiment(spec, RunContext(workers=4), persist=False)
        assert serial.payload == pooled.payload
        assert serial.payload["digest"] == pooled.payload["digest"]
        assert serial.manifest.result_digest \
            == pooled.manifest.result_digest

    def test_cache_warm_run_evaluates_nothing(self, tmp_path):
        spec = quick_campaign()
        cache = tmp_path / "cache"
        cold = run_experiment(spec, RunContext(cache=cache), persist=False)
        warm_ctx = RunContext(cache=cache)
        warm = run_experiment(spec, warm_ctx, persist=False)
        assert warm.payload == cold.payload
        stats = warm_ctx.stats()
        assert stats.get("exec.runner.evaluated", 0) == 0
        assert stats.get("exec.cache.hits", 0) >= spec.schedules

    def test_report_digest_excludes_execution_noise(self):
        """The report must not leak code version, timings or workers."""
        result = run_experiment(quick_campaign(), persist=False)
        text = json.dumps(result.payload)
        assert result.manifest.code_version not in text
        assert "elapsed" not in text and "workers" not in text

    def test_campaign_value_object(self):
        result = run_experiment(quick_campaign(), persist=False)
        value = result.value
        assert isinstance(value, CampaignResult)
        assert len(value.records) == 4
        assert value.report is result.payload
        assert all(r.spec.name.startswith("t-camp-s")
                   for r in value.records)


class TestShrinking:
    def test_demo_shrinks_to_minimal_fault_set(self):
        result = run_experiment(demo_campaign(), persist=False)
        assert result.manifest.summary["failed"] == 2
        shrunk = [r for r in result.value.records if r.minimal is not None]
        assert shrunk, "broken-oracle demo must shrink something"
        for record in shrunk:
            total = (len(record.minimal.faults)
                     + len(record.minimal.link_cuts))
            assert total <= 2
            assert total < (len(record.spec.faults)
                            + len(record.spec.link_cuts))
            # Only the lossy kind can trip mathis-ceiling.
            assert all(f.kind == "linecard"
                       for f in record.minimal.faults)

    def test_replay_artifact_is_a_runnable_spec(self, tmp_path):
        result = run_experiment(demo_campaign(),
                                RunContext(artifacts=tmp_path))
        arts = list(pathlib.Path(result.artifact_dir).glob("repro-*.json"))
        assert arts, "shrunk schedules must emit replay artifacts"
        replay = ExperimentSpec.from_file(arts[0])
        assert replay.kind == "scenario"
        # The artifact digests are part of the provenance manifest.
        for art in arts:
            assert art.name in result.manifest.artifacts
        assert "report.json" in result.manifest.artifacts

    def test_shrink_disabled_keeps_full_schedules(self):
        result = run_experiment(demo_campaign(shrink=False),
                                persist=False)
        assert all(r.minimal is None for r in result.value.records)
        assert result.manifest.summary["shrunk"] == 0


class TestCommittedCampaigns:
    def test_chaos_quick_matches_golden(self):
        spec = ExperimentSpec.from_file(SPECS / "chaos_quick.json")
        golden = json.loads((SPECS / "golden.json").read_text())
        result = run_experiment(spec, persist=False)
        assert result.manifest.spec_digest \
            == golden["chaos-quick"]["spec_digest"]
        assert result.manifest.result_digest \
            == golden["chaos-quick"]["result_digest"]
        assert result.manifest.summary["failed"] == 0

    def test_demo_repro_spec_still_violates(self):
        """The committed shrunk artifact reproduces its violation."""
        from repro.chaos.runner import _campaign_point
        from repro.exec.seeding import canonical_json

        replay = ExperimentSpec.from_file(SPECS / "chaos_demo_repro.json")
        out = _campaign_point(
            replay.to_json(),
            canonical_json([["mathis-ceiling",
                             {"min_loss": 1e-06, "slack": 0.5}]]),
            canonical_json(None))
        assert out["violations"].get("mathis-ceiling")


class TestRenderReport:
    def test_render_clean_and_failing(self):
        clean = run_experiment(quick_campaign(), persist=False)
        text = render_report(clean.payload)
        assert "survival by fault count" in text
        assert "every invariant held" in text
        failing = run_experiment(demo_campaign(), persist=False)
        text = render_report(failing.payload)
        assert "oracle violations" in text
        assert "mathis-ceiling" in text
        assert "replay: repro-" in text


class TestChaosCli:
    def run_cli(self, *argv):
        from repro.cli import main
        return main([str(a) for a in argv])

    def test_campaign_clean_exits_zero(self, tmp_path, capsys):
        spec_path = tmp_path / "c.json"
        spec_path.write_text(json.dumps(quick_campaign().to_dict()))
        rc = self.run_cli("chaos", spec_path, "--no-persist")
        out = capsys.readouterr().out
        assert rc == 0
        assert "every invariant held" in out

    def test_campaign_violations_exit_one(self, tmp_path, capsys):
        spec_path = tmp_path / "d.json"
        spec_path.write_text(json.dumps(demo_campaign().to_dict()))
        rc = self.run_cli("chaos", spec_path, "--no-persist")
        assert rc == 1
        assert "mathis-ceiling" in capsys.readouterr().out

    def test_seed_override_changes_digest(self, tmp_path, capsys):
        spec_path = tmp_path / "c.json"
        spec_path.write_text(json.dumps(quick_campaign().to_dict()))
        self.run_cli("chaos", spec_path, "--no-persist")
        base = capsys.readouterr().out
        self.run_cli("chaos", spec_path, "--seed", "99", "--no-persist")
        other = capsys.readouterr().out

        def digest(text):
            for line in text.splitlines():
                if "result digest:" in line:
                    return line.split()[-1]
        assert digest(base) != digest(other)

    def test_replay_mode_with_oracle_flag(self, capsys):
        rc = self.run_cli("chaos", SPECS / "chaos_demo_repro.json",
                          "--oracle", "mathis-ceiling:min_loss=1e-6,slack=0.5")
        err = capsys.readouterr().err
        assert rc == 1
        assert "VIOLATION mathis-ceiling" in err

    def test_replay_mode_default_oracles_clean(self, capsys):
        rc = self.run_cli("chaos", SPECS / "chaos_demo_repro.json")
        out = capsys.readouterr().out
        assert rc == 0
        assert "every oracle held" in out

    def test_report_flag_writes_payload(self, tmp_path):
        spec_path = tmp_path / "c.json"
        spec_path.write_text(json.dumps(quick_campaign().to_dict()))
        report_path = tmp_path / "report.json"
        self.run_cli("chaos", spec_path, "--no-persist",
                     "--report", report_path)
        report = json.loads(report_path.read_text())
        assert report["campaign"] == "t-camp"
        assert report["schedules"] == 4

"""ExperimentService: scheduling, dedupe, parity, drain/restore.

Run with ``workers=0`` + :meth:`step` so the queue holds still between
assertions — the scheduler is exercised deterministically, no sleeps.
The one load-bearing invariant everywhere: a manifest produced by the
service carries the *same digest* as one produced by offline
``run_experiment`` for the same spec.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import (AdmissionError, ConfigurationError,
                          DrainingError, ServeError)
from repro.experiment import ExperimentSpec, RunContext, run_experiment
from repro.serve import ExperimentService
from repro.serve.scheduler import QUEUE_STATE_FILE, JOBS_STATE_FILE


def sweep_spec(name, rtts=(1.0, 10.0), target="mathis"):
    return {
        "schema": 1, "kind": "sweep", "name": name, "seed": 7,
        "target": target, "value_label": "gbps",
        "grid": {"rtt_ms": list(rtts), "loss": [4.5e-5],
                 "mss_bytes": [9000]},
    }


@pytest.fixture
def service(tmp_path):
    svc = ExperimentService(workers=0, cache=tmp_path / "cache",
                            state_dir=tmp_path / "state")
    svc.start()
    return svc


class TestExecution:
    def test_submit_queues_then_step_completes(self, service):
        job = service.submit(sweep_spec("s1"), tenant="alice")
        assert job.state == "queued"
        assert service.step() is job
        assert job.state == "done"
        assert job.manifest["result_digest"]
        assert job.points_done == job.points_total == 2

    def test_service_manifest_digest_matches_offline_run(self, service):
        doc = sweep_spec("parity")
        job = service.submit(doc)
        service.step()
        offline = run_experiment(ExperimentSpec.from_dict(doc),
                                 RunContext(), persist=False)
        assert job.manifest["digest"] == offline.manifest.digest()
        assert (job.manifest["result_digest"]
                == offline.manifest.result_digest)
        # Byte-identical payloads, not merely equal digests.
        assert (json.dumps(job.payload, sort_keys=True)
                == json.dumps(offline.payload, sort_keys=True))

    def test_failed_job_records_error(self, service):
        job = service.submit(sweep_spec("bad", target="no-such-target"))
        service.step()
        assert job.state == "failed"
        assert "no-such-target" in job.error
        assert job.manifest is None

    def test_scenario_spec_runs(self, service):
        spec = {"schema": 1, "kind": "scenario", "name": "sc", "seed": 3,
                "design": "simple-science-dmz", "until_s": 60.0}
        job = service.submit(spec)
        service.step()
        assert job.state == "done"
        assert job.points_total == 1

    def test_wait_returns_terminal_job_and_times_out(self, service):
        job = service.submit(sweep_spec("w"))
        with pytest.raises(ServeError, match="still"):
            service.wait(job.id, timeout=0.05)
        service.step()
        assert service.wait(job.id, timeout=1).state == "done"
        with pytest.raises(ServeError, match="unknown job"):
            service.wait("job-999999", timeout=0.05)


class TestDedupe:
    def test_memo_answers_identical_resubmission(self, service):
        doc = sweep_spec("memo")
        first = service.submit(doc, tenant="alice")
        service.step()
        second = service.submit(doc, tenant="bob")
        assert second.state == "done"
        assert second.deduped == "memo"
        assert second.manifest["digest"] == first.manifest["digest"]
        # No new execution slot was consumed.
        assert len(service.queue) == 0

    def test_inflight_submission_attaches_to_primary(self, service):
        doc = sweep_spec("herd")
        primary = service.submit(doc, tenant="alice")
        rider = service.submit(doc, tenant="bob")
        assert rider.deduped == "inflight"
        assert rider.primary_id == primary.id
        assert len(service.queue) == 1  # one execution for two jobs
        service.step()
        assert primary.state == rider.state == "done"
        assert rider.manifest["digest"] == primary.manifest["digest"]

    def test_attached_jobs_share_failure(self, service):
        doc = sweep_spec("fb", target="no-such-target")
        primary = service.submit(doc)
        rider = service.submit(doc)
        service.step()
        assert primary.state == rider.state == "failed"
        assert rider.error == primary.error

    def test_shared_cache_makes_reexecution_cheap(self, service):
        """Different specs overlapping in grid points share the cache:
        second spec's points are all hits."""
        a = sweep_spec("cache-a", rtts=(1.0, 10.0))
        b = sweep_spec("cache-b", rtts=(1.0, 10.0))
        b["seed"] = 7  # same seed+grid, different name => different digest
        service.submit(a)
        service.step()
        before = service.cache.stats()["hits"]
        service.submit(b)
        service.step()
        assert service.cache.stats()["hits"] == before + 2

    def test_dedupe_counted_in_metrics(self, service):
        doc = sweep_spec("m")
        service.submit(doc)
        service.submit(doc)
        service.step()
        service.submit(doc)
        snap = service.metrics_snapshot()
        assert snap["jobs"]["deduped_inflight"] == 1
        assert snap["jobs"]["deduped_memo"] == 1
        assert snap["jobs"]["admitted"] == 1
        assert snap["dedupe_ratio"] == pytest.approx(2 / 3, abs=1e-4)


class TestAdmission:
    def test_queue_full_rejects_with_retry_hint(self, tmp_path):
        svc = ExperimentService(workers=0, capacity=1).start()
        svc.submit(sweep_spec("q1"))
        with pytest.raises(AdmissionError) as exc:
            svc.submit(sweep_spec("q2"))
        assert exc.value.retry_after_s > 0
        assert svc.metrics_snapshot()["jobs"]["rejected"] == 1

    def test_unknown_priority_rejected_not_counted_rejected(self, service):
        with pytest.raises(ConfigurationError, match="unknown priority"):
            service.submit(sweep_spec("p"), priority="urgent")
        assert service.metrics_snapshot()["jobs"]["rejected"] == 0

    def test_bad_spec_rejected_at_submit(self, service):
        with pytest.raises(ConfigurationError):
            service.submit("{not json")

    def test_priority_order_served_first(self, service):
        batch = service.submit(sweep_spec("b1"), priority="batch")
        inter = service.submit(sweep_spec("i1"), priority="interactive")
        assert service.step() is inter
        assert service.step() is batch


class TestDrain:
    def test_drain_rejects_new_submissions(self, service):
        service.drain(timeout=5)
        with pytest.raises(DrainingError):
            service.submit(sweep_spec("late"))

    def test_drain_persists_backlog_and_restore_requeues(self, tmp_path):
        state = tmp_path / "state"
        svc = ExperimentService(workers=0, state_dir=state).start()
        j1 = svc.submit(sweep_spec("d1"), tenant="alice",
                        priority="interactive")
        j2 = svc.submit(sweep_spec("d2"), tenant="bob")
        summary = svc.drain(timeout=5)
        assert summary["persisted"] == 2
        assert j1.state == j2.state == "persisted"
        saved = json.loads((state / QUEUE_STATE_FILE).read_text())
        assert [e["id"] for e in saved["jobs"]] == [j1.id, j2.id]
        assert (state / JOBS_STATE_FILE).exists()

        svc2 = ExperimentService(workers=0, state_dir=state).start()
        assert svc2.metrics_snapshot()["jobs"]["restored"] == 2
        # Ids survive the round trip; fresh ids never collide.
        assert svc2.job(j1.id) is not None
        restored = svc2.step()
        assert restored.id == j1.id  # interactive still first
        assert restored.state == "done"
        assert svc2.step().id == j2.id
        fresh = svc2.submit(sweep_spec("d3"))
        assert fresh.id not in (j1.id, j2.id)
        # The consumed state file is gone: a third start restores nothing.
        assert not (state / QUEUE_STATE_FILE).exists()

    def test_drain_twice_is_noop(self, service):
        service.submit(sweep_spec("x"))
        first = service.drain(timeout=5)
        assert first["persisted"] == 1
        assert service.drain(timeout=5)["persisted"] == 0

    def test_threaded_workers_finish_in_flight_on_drain(self, tmp_path):
        svc = ExperimentService(workers=2,
                                cache=tmp_path / "cache").start()
        jobs = [svc.submit(sweep_spec(f"t{i}")) for i in range(4)]
        for job in jobs:
            svc.wait(job.id, timeout=30)
        svc.drain(timeout=10)
        assert all(j.state == "done" for j in jobs)
        snap = svc.metrics_snapshot()
        assert snap["jobs"]["completed"] == 4
        assert snap["queue_latency"]["count"] >= 4
        assert snap["queue_latency"]["p99_s"] is not None


class TestQueries:
    def test_job_listing_filters_and_limits(self, service):
        service.submit(sweep_spec("l1"), tenant="alice")
        service.submit(sweep_spec("l2"), tenant="bob")
        service.submit(sweep_spec("l3"), tenant="alice")
        assert len(service.jobs()) == 3
        assert {j["tenant"] for j in service.jobs(tenant="alice")} == {
            "alice"}
        assert len(service.jobs(limit=2)) == 2

    def test_events_cursor(self, service):
        job = service.submit(sweep_spec("e1"))
        head = service.job_events(job.id)
        assert [e["event"] for e in head] == ["queued"]
        service.step()
        rest = service.job_events(job.id, since=len(head))
        assert rest[0]["event"] == "running"
        assert rest[-1]["event"] == "done"
        assert any(e["event"] == "point" for e in rest)

    def test_snapshot_payload_opt_in(self, service):
        job = service.submit(sweep_spec("s"))
        service.step()
        assert "payload" not in service.job_snapshot(job.id)
        snap = service.job_snapshot(job.id, with_payload=True)
        assert snap["payload"]["records"]

"""Tests for the parameter-sweep helper."""

import pytest

from repro.analysis import sweep
from repro.errors import ConfigurationError


class TestSweep:
    def test_cartesian_order(self):
        result = sweep(lambda a, b: (a, b), {"a": [1, 2], "b": ["x", "y"]})
        assert [r.params for r in result.records] == [
            {"a": 1, "b": "x"}, {"a": 1, "b": "y"},
            {"a": 2, "b": "x"}, {"a": 2, "b": "y"},
        ]

    def test_values(self):
        result = sweep(lambda x: x * x, {"x": [1, 2, 3]})
        assert result.values() == [1, 4, 9]

    def test_table_rendering(self):
        result = sweep(lambda x: x + 1, {"x": [1, 2]},
                       value_label="successor")
        table = result.table("demo")
        assert table.columns == ["x", "successor"]
        assert len(table) == 2
        assert "demo" in table.render_text()

    def test_best(self):
        result = sweep(lambda x: 10 - (x - 3) ** 2, {"x": [0, 1, 2, 3, 4]})
        assert result.best(key=float).params == {"x": 3}
        assert result.best(key=float, maximize=False).params == {"x": 0}

    def test_errors_propagate_by_default(self):
        def boom(x):
            raise ValueError("nope")
        with pytest.raises(ValueError):
            sweep(boom, {"x": [1]})

    def test_catch_errors_records_failures(self):
        def sometimes(x):
            if x == 2:
                raise ValueError("two is right out")
            return x
        result = sweep(sometimes, {"x": [1, 2, 3]}, catch_errors=True)
        assert result.values() == [1, 3]
        assert len(result.failures()) == 1
        assert "two is right out" in result.failures()[0].error
        table = result.table()
        assert "error:" in table.render_text()

    def test_on_error_raise_propagates(self):
        def boom(x):
            raise ValueError("nope")
        with pytest.raises(ValueError):
            sweep(boom, {"x": [1]}, on_error="raise")
        # on_error="raise" wins even when catch_errors says otherwise.
        with pytest.raises(ValueError):
            sweep(boom, {"x": [1]}, catch_errors=True, on_error="raise")

    def test_on_error_record_collects_failures(self):
        def sometimes(x):
            if x % 2 == 0:
                raise ValueError(f"{x} is even")
            return x
        result = sweep(sometimes, {"x": [1, 2, 3, 4]}, on_error="record")
        assert result.values() == [1, 3]
        assert len(result.failures()) == 2
        assert "2 is even" in result.failures()[0].error

    def test_error_like_string_value_is_not_marked_failed(self):
        """Regression: a legitimate value starting with "error:" used to
        be indistinguishable from a failed cell in the rendered table;
        rendering is now driven by the record's ``ok`` flag."""
        result = sweep(lambda x: f"error: {x} (a legit string)",
                       {"x": [1, 2]})
        assert all(r.ok for r in result.records)
        table = result.table("legit")
        # No failures -> no status column, values rendered verbatim.
        assert table.columns == ["x", "value"]
        assert "error: 1 (a legit string)" in table.render_text()

    def test_status_column_distinguishes_failures_from_error_strings(self):
        def tricky(x):
            if x == 2:
                raise ValueError("actual failure")
            return "error: just data"

        result = sweep(tricky, {"x": [1, 2]}, on_error="record")
        table = result.table("tricky")
        assert table.columns == ["x", "value", "status"]
        assert table.column("status") == ["ok", "error: actual failure"]
        # The legit string stays in the value column; the failed cell
        # carries a placeholder, not a fake value.
        assert table.column("value") == ["error: just data", "-"]

    def test_status_column_can_be_forced(self):
        result = sweep(lambda x: x, {"x": [1]})
        assert result.table("t", status=True).columns == \
            ["x", "value", "status"]
        failing = sweep(lambda x: 1 // 0, {"x": [1]}, catch_errors=True)
        assert failing.table("t", status=False).columns == ["x", "value"]

    def test_on_error_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError):
            sweep(lambda x: x, {"x": [1]}, on_error="ignore")

    def test_best_requires_success(self):
        def boom(x):
            raise ValueError("nope")
        result = sweep(boom, {"x": [1]}, catch_errors=True)
        with pytest.raises(ConfigurationError):
            result.best(key=float)

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep(lambda: 1, {})
        with pytest.raises(ConfigurationError):
            sweep(lambda x: x, {"x": []})

    def test_realistic_sweep_with_library(self):
        """A miniature version of what the benches do."""
        from repro.tcp.mathis import mathis_throughput
        from repro.units import bytes_, seconds
        result = sweep(
            lambda rtt_ms, loss: mathis_throughput(
                bytes_(9000), seconds(rtt_ms / 1e3), loss).mbps,
            {"rtt_ms": [10, 100], "loss": [1e-4, 1e-2]},
            value_label="mathis_mbps",
        )
        values = result.values()
        assert values[0] > values[1]  # more loss, less throughput
        assert values[0] > values[2]  # more rtt, less throughput

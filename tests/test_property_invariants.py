"""Property-based tests over the library's core invariants.

These encode the physics and protocol laws the simulator must never
violate, regardless of parameters:

* path profiles: capacity is the min, latency the sum, loss combines
  multiplicatively, MSS never exceeds the path MTU;
* TCP: throughput never exceeds capacity or window/RTT; more loss never
  helps; conservation of bytes;
* fairness: allocations never exceed demands or link capacities;
* OSCARS: no sequence of admissions oversubscribes a link;
* queues: accepted + dropped == offered, occupancy <= capacity;
* ACL/flow tables: evaluation is deterministic and total.
"""


import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.circuits import OscarsService, ReservationRequest
from repro.errors import CapacityError
from repro.netsim import Link, Topology
from repro.netsim.buffers import DropTailQueue
from repro.netsim.node import Router
from repro.tcp import Reno, TcpConnection
from repro.tcp.simulate import max_min_fair_allocation
from repro.units import GB, Gbps, KB, MB, Mbps, bytes_, hours, ms, seconds

# ---------------------------------------------------------------------------
# Path profile composition
# ---------------------------------------------------------------------------

link_params = st.tuples(
    st.floats(min_value=0.05, max_value=100.0),   # rate Gbps
    st.floats(min_value=0.01, max_value=100.0),   # one-way delay ms
    st.floats(min_value=0.0, max_value=0.05),     # loss prob
    st.sampled_from([1500, 9000]),                # mtu bytes
)


@st.composite
def chain_topologies(draw):
    """A linear chain host-r1-r2-...-host with random link parameters."""
    n_links = draw(st.integers(min_value=1, max_value=5))
    params = [draw(link_params) for _ in range(n_links)]
    topo = Topology("chain")
    topo.add_host("h0", nic_rate=Gbps(200))
    prev = "h0"
    for i, _ in enumerate(params[:-1]):
        topo.add_node(Router(name=f"r{i}"))
    topo.add_host("h1", nic_rate=Gbps(200))
    nodes = ["h0"] + [f"r{i}" for i in range(n_links - 1)] + ["h1"]
    for (a, b), (rate, delay, loss, mtu) in zip(zip(nodes, nodes[1:]),
                                                params):
        topo.connect(a, b, Link(rate=Gbps(rate), delay=ms(delay),
                                loss_probability=loss, mtu=bytes_(mtu)))
    return topo, params


class TestProfileComposition:
    @settings(max_examples=80, deadline=None)
    @given(chain_topologies())
    def test_capacity_is_min_of_links(self, built):
        topo, params = built
        profile = topo.profile_between("h0", "h1")
        assert profile.capacity.bps == pytest.approx(
            min(p[0] for p in params) * 1e9)

    @settings(max_examples=80, deadline=None)
    @given(chain_topologies())
    def test_latency_at_least_sum_of_links(self, built):
        topo, params = built
        profile = topo.profile_between("h0", "h1")
        link_sum = sum(p[1] for p in params) / 1e3
        assert profile.one_way_latency.s >= link_sum - 1e-12
        # Router forwarding adds at most 50 us per hop.
        assert profile.one_way_latency.s <= link_sum + 60e-6 * len(params)

    @settings(max_examples=80, deadline=None)
    @given(chain_topologies())
    def test_loss_combines_multiplicatively(self, built):
        topo, params = built
        profile = topo.profile_between("h0", "h1")
        survive = 1.0
        for _, _, loss, _ in params:
            survive *= (1.0 - loss)
        assert profile.random_loss == pytest.approx(1.0 - survive)
        assert 0.0 <= profile.random_loss < 1.0

    @settings(max_examples=80, deadline=None)
    @given(chain_topologies())
    def test_mss_respects_path_mtu(self, built):
        topo, params = built
        profile = topo.profile_between("h0", "h1")
        min_mtu = min(p[3] for p in params)
        assert profile.mtu.bytes == min_mtu
        assert profile.flow.mss.bytes <= min_mtu - 40


# ---------------------------------------------------------------------------
# TCP model laws
# ---------------------------------------------------------------------------

def make_profile(rate_gbps, rtt_ms, loss, window_mb):
    topo = Topology("p")
    topo.add_host("a", nic_rate=Gbps(rate_gbps))
    topo.add_host("b", nic_rate=Gbps(rate_gbps))
    topo.connect("a", "b", Link(rate=Gbps(rate_gbps),
                                delay=ms(rtt_ms / 2),
                                mtu=bytes_(9000),
                                loss_probability=loss))
    profile = topo.profile_between("a", "b")
    from dataclasses import replace
    return replace(profile,
                   flow=profile.flow.with_(max_receive_window=MB(window_mb)))


class TestTcpLaws:
    @settings(max_examples=40, deadline=None)
    @given(rate=st.floats(min_value=0.1, max_value=40),
           rtt=st.floats(min_value=1, max_value=200),
           window=st.floats(min_value=0.1, max_value=512))
    def test_throughput_never_exceeds_capacity_or_window(self, rate, rtt,
                                                         window):
        profile = make_profile(rate, rtt, 0.0, window)
        result = TcpConnection(profile).measure(seconds(20),
                                                max_rounds=100_000)
        bps = result.mean_throughput.bps
        assert bps <= rate * 1e9 * 1.001
        window_cap = MB(window).bits / profile.base_rtt.s
        assert bps <= window_cap * 1.001

    @settings(max_examples=20, deadline=None)
    @given(loss_lo=st.floats(min_value=1e-6, max_value=1e-4),
           factor=st.floats(min_value=5, max_value=100))
    def test_more_loss_never_helps(self, loss_lo, factor):
        loss_hi = min(0.05, loss_lo * factor)
        assume(loss_hi > loss_lo)
        lo = TcpConnection(make_profile(10, 50, loss_lo, 256),
                           algorithm=Reno(),
                           rng=np.random.default_rng(7)).measure(
            seconds(30), max_rounds=100_000)
        hi = TcpConnection(make_profile(10, 50, loss_hi, 256),
                           algorithm=Reno(),
                           rng=np.random.default_rng(7)).measure(
            seconds(30), max_rounds=100_000)
        # Allow 20% stochastic slack; the trend must hold.
        assert hi.mean_throughput.bps <= lo.mean_throughput.bps * 1.2

    @settings(max_examples=30, deadline=None)
    @given(size_gb=st.floats(min_value=0.1, max_value=50),
           rtt=st.floats(min_value=1, max_value=100))
    def test_transfer_conserves_bytes(self, size_gb, rtt):
        profile = make_profile(10, rtt, 0.0, 64)
        result = TcpConnection(profile).transfer(GB(size_gb))
        assert result.bytes_delivered.bits == pytest.approx(
            GB(size_gb).bits, rel=1e-9)
        assert result.duration.s > 0

    @settings(max_examples=30, deadline=None)
    @given(rtt=st.floats(min_value=1, max_value=100),
           loss=st.floats(min_value=0.0, max_value=0.01))
    def test_steady_state_bounds_hold(self, rtt, loss):
        profile = make_profile(10, rtt, loss, 64)
        rng = np.random.default_rng(3) if loss > 0 else None
        conn = TcpConnection(profile, rng=rng)
        est = conn.steady_state_throughput()
        assert est.bps <= profile.capacity.bps + 1
        window_cap = profile.flow.effective_receive_window().bits \
            / profile.base_rtt.s
        assert est.bps <= window_cap * 1.001


# ---------------------------------------------------------------------------
# Max-min fairness
# ---------------------------------------------------------------------------

class TestFairnessProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        n_flows=st.integers(min_value=1, max_value=8),
        n_links=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_feasibility(self, n_flows, n_links, seed):
        rng = np.random.default_rng(seed)
        demands = rng.uniform(1e7, 5e10, size=n_flows)
        usage = rng.random((n_flows, n_links)) < 0.5
        # Every flow crosses at least one link.
        for f in range(n_flows):
            if not usage[f].any():
                usage[f, rng.integers(n_links)] = True
        caps = rng.uniform(1e8, 1e11, size=n_links)
        alloc = max_min_fair_allocation(demands, usage, caps)
        assert np.all(alloc >= -1e-6)
        assert np.all(alloc <= demands + 1e-6)
        per_link = (alloc[:, None] * usage).sum(axis=0)
        assert np.all(per_link <= caps * (1 + 1e-6) + 1.0)

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_pareto_efficiency_on_single_link(self, seed):
        """On one shared link, max-min leaves no capacity unused unless
        all demands are satisfied."""
        rng = np.random.default_rng(seed)
        n = rng.integers(1, 8)
        demands = rng.uniform(1e8, 2e10, size=n)
        usage = np.ones((n, 1), dtype=bool)
        cap = np.array([rng.uniform(1e8, 3e10)])
        alloc = max_min_fair_allocation(demands, usage, cap)
        used = alloc.sum()
        if demands.sum() >= cap[0]:
            assert used == pytest.approx(cap[0], rel=1e-6)
        else:
            assert used == pytest.approx(demands.sum(), rel=1e-6)


# ---------------------------------------------------------------------------
# OSCARS admission control
# ---------------------------------------------------------------------------

class TestOscarsProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        requests=st.lists(
            st.tuples(st.floats(min_value=0.1, max_value=6.0),   # Gbps
                      st.integers(min_value=0, max_value=4),     # start h
                      st.integers(min_value=1, max_value=4)),    # dur h
            min_size=1, max_size=15),
    )
    def test_never_oversubscribes(self, requests):
        topo = Topology("osc")
        topo.add_host("a", nic_rate=Gbps(10))
        topo.add_host("b", nic_rate=Gbps(10))
        topo.connect("a", "b", Link(rate=Gbps(10), delay=ms(5)))
        svc = OscarsService(topo, reservable_fraction=0.8)
        link = topo.link_between("a", "b")
        for gbps, start_h, dur_h in requests:
            req = ReservationRequest("a", "b", Gbps(gbps),
                                     hours(start_h),
                                     hours(start_h + dur_h))
            try:
                svc.reserve(req)
            except CapacityError:
                continue
            # Invariant after every admission: no overlapping window
            # commits more than the reservable ceiling.
            for probe_h in range(0, 10):
                probe = ReservationRequest(
                    "a", "b", Gbps(0.001),
                    hours(probe_h), hours(probe_h + 1))
                committed = svc.committed_on_link(link, probe)
                assert committed <= 0.8 * 10e9 + 1e-3


# ---------------------------------------------------------------------------
# Queue conservation
# ---------------------------------------------------------------------------

class TestQueueProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        cap_kb=st.floats(min_value=8, max_value=1024),
        pkt_bytes=st.integers(min_value=64, max_value=9000),
        n=st.integers(min_value=1, max_value=200),
        gap_us=st.floats(min_value=0, max_value=100),
        rate_mbps=st.floats(min_value=1, max_value=10_000),
    )
    def test_conservation_and_bounds(self, cap_kb, pkt_bytes, n, gap_us,
                                     rate_mbps):
        queue = DropTailQueue(capacity=KB(cap_kb),
                              service_rate=Mbps(rate_mbps))
        for i in range(n):
            queue.offer(bytes_(pkt_bytes), i * gap_us * 1e-6)
        stats = queue.stats
        assert stats.enqueued_packets + stats.dropped_packets == n
        assert queue.occupancy_bits <= queue.capacity.bits + 1e-9
        assert stats.max_occupancy_bits <= queue.capacity.bits + 1e-9
        assert 0.0 <= stats.drop_fraction <= 1.0


# ---------------------------------------------------------------------------
# Multi-domain circuit conservation
# ---------------------------------------------------------------------------

class TestMultiDomainProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        requests=st.lists(st.floats(min_value=0.5, max_value=9.0),
                          min_size=1, max_size=12),
    )
    def test_segments_always_balanced(self, requests):
        """However many end-to-end requests are admitted or refused, every
        domain holds exactly one segment per *admitted* circuit — no
        leaks from the all-or-nothing rollback."""
        from repro.circuits import Domain, InterDomainController, OscarsService
        from repro.netsim.node import Router
        from repro.units import hours

        def campus(name, host, xp):
            topo = Topology(name)
            topo.add_host(host, nic_rate=Gbps(10))
            topo.add_node(Router(name=xp))
            topo.connect(host, xp, Link(rate=Gbps(10), delay=ms(1)))
            return Domain(name, topo, OscarsService(topo))

        a = campus("a", "ha", "xa")
        b = campus("b", "hb", "xb")
        transit_topo = Topology("t")
        transit_topo.add_node(Router(name="xa"))
        transit_topo.add_node(Router(name="xb"))
        transit_topo.connect("xa", "xb", Link(rate=Gbps(20), delay=ms(10)))
        transit = Domain("t", transit_topo, OscarsService(transit_topo))
        idc = InterDomainController(
            [a, transit, b], [("a", "t", "xa"), ("t", "b", "xb")])

        admitted = 0
        for gbps in requests:
            try:
                idc.reserve_end_to_end("ha", "hb", Gbps(gbps),
                                       start=seconds(0), end=hours(1))
                admitted += 1
            except CapacityError:
                pass
        for domain in (a, transit, b):
            assert len(domain.oscars.active()) == admitted
        assert len(idc.active()) == admitted

"""Tests for the discrete-event engine."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.netsim.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_same_time_events_fire_in_insertion_order(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(1.0, lambda i=i: fired.append(i))
        sim.run()
        assert fired == list(range(10))

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append(("outer", sim.now))
            sim.schedule(1.0, lambda: fired.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == [("outer", 1.0), ("inner", 2.0)]

    def test_cancelled_event_skipped(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("x"))
        event.cancel()
        sim.run()
        assert fired == []
        assert sim.events_processed == 0


class TestCancelSemantics:
    def test_cancelled_event_at_same_timestamp_does_not_fire(self):
        """Cancelling one of several same-time events must skip exactly
        that one while the others fire in insertion order."""
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("a"))
        victim = sim.schedule(1.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("c"))
        victim.cancel()
        sim.run()
        assert fired == ["a", "c"]
        assert sim.events_processed == 2

    def test_cancel_preserves_seq_ordering_of_survivors(self):
        """Cancellations leave holes in the seq sequence; survivors must
        still fire in their original insertion order."""
        sim = Simulator()
        fired = []
        events = [sim.schedule(1.0, lambda i=i: fired.append(i))
                  for i in range(10)]
        for event in events[::2]:
            event.cancel()
        sim.run()
        assert fired == [1, 3, 5, 7, 9]

    def test_cancel_from_earlier_event_callback(self):
        """An event firing at t may cancel a later same-t event before
        the engine reaches it."""
        sim = Simulator()
        fired = []
        victim = [None]

        def canceller():
            fired.append("canceller")
            victim[0].cancel()

        sim.schedule(2.0, canceller)
        victim[0] = sim.schedule(2.0, lambda: fired.append("victim"))
        sim.run()
        assert fired == ["canceller"]

    def test_cancel_after_firing_is_harmless(self):
        """Same-t insertion order is seq order, so a cancel scheduled
        after its target runs too late — the target already fired."""
        sim = Simulator()
        fired = []
        target = sim.schedule(2.0, lambda: fired.append("target"))
        sim.schedule(2.0, lambda: target.cancel())
        sim.run()
        assert fired == ["target"]

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()
        assert sim.events_processed == 0

    def test_cancelled_events_counted_when_traced(self):
        from repro.telemetry import Tracer
        sim = Simulator(tracer=Tracer())
        kept = []
        sim.schedule(1.0, lambda: kept.append(1))
        sim.schedule(1.0, lambda: kept.append(2)).cancel()
        sim.schedule(2.0, lambda: kept.append(3)).cancel()
        sim.run()
        assert kept == [1]
        metrics = sim.tracer.metrics.as_dict()
        assert metrics["engine/events.cancelled"]["value"] == 2
        assert metrics["engine/events.dispatched"]["value"] == 1


class TestRunUntil:
    def test_run_until_stops_at_time(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run_until(3.0)
        assert fired == [1]
        assert sim.now == 3.0
        sim.run_until(10.0)
        assert fired == [1, 5]

    def test_run_until_backwards_rejected(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.run_until(1.0)

    def test_run_until_inclusive_of_boundary(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("edge"))
        sim.run_until(2.0)
        assert fired == ["edge"]


class TestPeriodic:
    def test_periodic_fires_repeatedly(self):
        sim = Simulator()
        count = [0]
        sim.schedule_periodic(1.0, lambda: count.__setitem__(0, count[0] + 1))
        sim.run_until(5.5)
        assert count[0] == 5

    def test_periodic_with_start_offset(self):
        sim = Simulator()
        times = []
        sim.schedule_periodic(2.0, lambda: times.append(sim.now), start=0.5)
        sim.run_until(6.0)
        assert times == [0.5, 2.5, 4.5]

    def test_periodic_until_bound(self):
        sim = Simulator()
        times = []
        sim.schedule_periodic(1.0, lambda: times.append(sim.now), until=3.0)
        sim.run()
        assert times == [1.0, 2.0, 3.0]

    def test_bad_interval_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_periodic(0.0, lambda: None)


class TestRngStreams:
    def test_same_stream_same_generator(self):
        sim = Simulator(seed=1)
        assert sim.rng("x") is sim.rng("x")

    def test_streams_reproducible_across_simulators(self):
        a = Simulator(seed=42).rng("loss").random(5)
        b = Simulator(seed=42).rng("loss").random(5)
        assert np.allclose(a, b)

    def test_different_streams_independent(self):
        sim = Simulator(seed=42)
        a = sim.rng("one").random(5)
        b = sim.rng("two").random(5)
        assert not np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = Simulator(seed=1).rng("s").random(5)
        b = Simulator(seed=2).rng("s").random(5)
        assert not np.allclose(a, b)

    def test_new_stream_does_not_perturb_existing(self):
        sim1 = Simulator(seed=9)
        first = sim1.rng("main").random(3)
        sim2 = Simulator(seed=9)
        sim2.rng("other")  # create an unrelated stream first
        second = sim2.rng("main").random(3)
        assert np.allclose(first, second)


class TestRunawayProtection:
    def test_runaway_periodic_raises(self):
        sim = Simulator()
        sim.schedule_periodic(1e-9, lambda: None)
        with pytest.raises(SimulationError):
            sim.run_until(1.0, max_events=1000)

    def test_pending_counts_uncancelled(self):
        sim = Simulator()
        e1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        e1.cancel()
        assert sim.pending == 1


class TestPendingCounter:
    """`pending` is a live O(1) counter; it must survive every
    schedule/cancel/fire interleaving without drifting."""

    def test_decrements_as_events_fire(self):
        sim = Simulator()
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda: None)
        assert sim.pending == 3
        sim.step()
        assert sim.pending == 2
        sim.run()
        assert sim.pending == 0

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.pending == 1

    def test_cancel_after_fire_is_a_noop(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.step()
        event.cancel()
        assert sim.pending == 1

    def test_cancel_from_inside_a_callback(self):
        sim = Simulator()
        later = sim.schedule(2.0, lambda: None)
        sim.schedule(1.0, later.cancel)
        assert sim.pending == 2
        sim.run()
        assert sim.pending == 0

    def test_run_until_with_cancelled_heads(self):
        sim = Simulator()
        doomed = [sim.schedule(0.5 + i, lambda: None) for i in range(3)]
        sim.schedule(5.0, lambda: None)
        for event in doomed:
            event.cancel()
        assert sim.pending == 1
        sim.run_until(4.0)
        assert sim.pending == 1
        sim.run_until(6.0)
        assert sim.pending == 0

    def test_matches_heap_scan_under_churn(self):
        sim = Simulator(seed=3)
        rng = sim.rng("churn")
        events = []
        for _ in range(200):
            choice = rng.random()
            if choice < 0.5 or not events:
                events.append(sim.schedule(float(rng.random() * 10),
                                           lambda: None))
            elif choice < 0.8:
                events.pop(int(rng.integers(len(events)))).cancel()
            else:
                sim.run_until(sim.now + float(rng.random()))
            expected = sum(1 for e in sim._heap
                           if not e.cancelled and not e._fired)
            assert sim.pending == expected

"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.netsim import Link, Topology
from repro.netsim.node import Router
from repro.units import Gbps, bytes_, ms


@pytest.fixture
def rng():
    """Deterministic generator; tests share a fixed seed."""
    return np.random.default_rng(12345)


@pytest.fixture
def clean_path_topology():
    """Two 10G hosts across a 25 ms one-way (50 ms RTT) jumbo WAN link."""
    topo = Topology("clean")
    topo.add_host("a", nic_rate=Gbps(10))
    topo.add_host("b", nic_rate=Gbps(10))
    topo.connect("a", "b", Link(rate=Gbps(10), delay=ms(25),
                                mtu=bytes_(9000)))
    return topo


@pytest.fixture
def star_topology():
    """Four 10G hosts joined by a core router (1 ms spokes)."""
    topo = Topology("star")
    topo.add_node(Router(name="core"))
    for name in ("h1", "h2", "h3", "h4"):
        topo.add_host(name, nic_rate=Gbps(10))
        topo.connect(name, "core", Link(rate=Gbps(10), delay=ms(1),
                                        mtu=bytes_(9000)))
    return topo
